/**
 * @file
 * google-benchmark microbenchmarks for the library's hot kernels:
 * quantizers at each granularity, Tender decomposition and GEMM, the MSA
 * functional model, and the DRAM timing model.
 */

#include <benchmark/benchmark.h>

#include "core/msa_functional.h"
#include "core/tender_gemm.h"
#include "quant/granularity.h"
#include "sim/dram.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace tender {
namespace {

Matrix
benchMatrix(int rows, int cols, uint64_t seed = 1)
{
    Rng rng(seed);
    Matrix m = randomGaussian(rows, cols, rng, 0.f, 0.5f);
    for (int c = 0; c < cols; c += 16)
        for (int r = 0; r < rows; ++r)
            m(r, c) *= 40.f;
    return m;
}

void
BM_QuantizePerGranularity(benchmark::State &state)
{
    const auto g = Granularity(state.range(0));
    Matrix m = benchMatrix(256, 256);
    for (auto _ : state) {
        QuantizedMatrix qm = quantize(m, 8, g);
        benchmark::DoNotOptimize(qm.codes.data().data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(m.size()));
}
BENCHMARK(BM_QuantizePerGranularity)->Arg(0)->Arg(1)->Arg(2);

void
BM_Fp32Gemm(benchmark::State &state)
{
    const int n = int(state.range(0));
    Matrix a = benchMatrix(n, n, 1);
    Matrix b = benchMatrix(n, n, 2);
    for (auto _ : state) {
        Matrix c = gemm(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Fp32Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_TenderDecompose(benchmark::State &state)
{
    Matrix m = benchMatrix(256, int(state.range(0)));
    TenderConfig cfg;
    for (auto _ : state) {
        ChunkMeta meta = decomposeChunk(m, cfg);
        benchmark::DoNotOptimize(meta.order.data());
    }
}
BENCHMARK(BM_TenderDecompose)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_TenderMatmul(benchmark::State &state)
{
    const int n = int(state.range(0));
    Matrix x = benchMatrix(n, n, 3);
    Matrix w = benchMatrix(n, n, 4);
    TenderConfig cfg;
    cfg.rowChunk = 64;
    for (auto _ : state) {
        Matrix y = tenderMatmul(x, w, cfg);
        benchmark::DoNotOptimize(y.data().data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * n * n * n);
}
BENCHMARK(BM_TenderMatmul)->Arg(64)->Arg(128)->Arg(256);

void
BM_MsaFunctionalTile(benchmark::State &state)
{
    const int k = int(state.range(0));
    Rng rng(5);
    IntMatrix a(64, k), b(k, 64);
    for (auto &v : a.data())
        v = int32_t(rng.randint(-7, 7));
    for (auto &v : b.data())
        v = int32_t(rng.randint(-7, 7));
    std::vector<int> sizes = {k / 16, k / 16, k - 2 * (k / 16)};
    MsaConfig cfg;
    for (auto _ : state) {
        MsaTileResult r = msaComputeTile(a, b, sizes, cfg);
        benchmark::DoNotOptimize(r.acc.data().data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 64 * 64 * k);
}
BENCHMARK(BM_MsaFunctionalTile)->Arg(64)->Arg(256);

void
BM_DramStream(benchmark::State &state)
{
    DramConfig cfg;
    const uint64_t bytes = uint64_t(state.range(0)) << 10;
    for (auto _ : state) {
        DramModel dram(cfg);
        benchmark::DoNotOptimize(dram.streamTransfer(0, bytes, false, 0));
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(bytes));
}
BENCHMARK(BM_DramStream)->Arg(64)->Arg(1024)->Arg(16384);

} // namespace
} // namespace tender

BENCHMARK_MAIN();
