/**
 * @file
 * Table III: sequence-length sensitivity on OPT-6.7B (2048/256/32 in the
 * paper; the replica scales the token budget by 1/8 to 256/64/32 while
 * preserving the chunking-to-sequence ratios).
 *
 * "Tender (all)" additionally quantizes the activation-activation matrix
 * multiplications (Q K^T and S V, per head). Expected shape: Tender stays
 * at the FP16 baseline across lengths; Tender (all) costs only slightly
 * more; baselines degrade, badly at INT4.
 */

#include "quant/ant.h"
#include "quant/olive.h"
#include "quant/smoothquant.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

namespace {

/** Paper FP16 perplexities per sequence length (Table III). */
double
basePpl(int paper_seq, const std::string &dataset)
{
    const bool wiki = dataset == "wiki";
    switch (paper_seq) {
      case 2048: return wiki ? 10.86 : 13.09;
      case 256: return wiki ? 19.18 : 22.00;
      case 32: return wiki ? 78.97 : 103.42;
    }
    TENDER_FATAL("unexpected sequence length");
}

} // namespace

int
main()
{
    printBanner("Table III: sequence-length sensitivity (OPT-6.7B)");

    // Paper lengths and their replica-scaled counterparts.
    const std::vector<std::pair<int, int>> seqs = {
        {2048, 256}, {256, 64}, {32, 32}};
    const std::vector<std::string> datasets = {"wiki", "ptb"};

    TablePrinter table;
    std::vector<std::string> header = {"Precision", "Scheme"};
    for (const auto &[paper_seq, replica_seq] : seqs) {
        (void)replica_seq;
        for (const auto &d : datasets)
            header.push_back(std::to_string(paper_seq) +
                             (d == "wiki" ? " W" : " P"));
    }
    table.setHeader(header);

    SyntheticModel replica = makeReplica("OPT-6.7B");

    // Per (seq, dataset): anchors measured at that length; base from the
    // paper's FP16 row so length-induced base drift is honoured.
    struct Cell
    {
        PplModel ppl;
        AnchorErrors anchors;
        int replicaSeq;
        std::string dataset;
    };
    std::vector<Cell> cells;
    for (const auto &[paper_seq, replica_seq] : seqs) {
        for (const auto &d : datasets) {
            Cell c;
            c.replicaSeq = replica_seq;
            c.dataset = d;
            c.anchors = measureAnchors(replica, d, {}, replica_seq);
            double p8 = 0, p4 = 0;
            paperAnchorPerplexities("OPT-6.7B", d, p8, p4);
            // Scale the anchor perplexities with the base drift.
            const double drift = basePpl(paper_seq, d) / basePpl(2048, d);
            c.ppl = anchorPplModel(basePpl(paper_seq, d), c.anchors.e8,
                                   p8 * drift, c.anchors.e4, p4 * drift);
            cells.push_back(c);
        }
    }

    std::vector<std::string> base_row = {"FP16", "Base"};
    for (const auto &c : cells)
        base_row.push_back(TablePrinter::num(c.ppl.basePpl));
    table.addRow(base_row);
    table.addSeparator();

    for (int bits : {8, 4}) {
        struct Entry
        {
            std::string name;
            std::unique_ptr<GemmScheme> scheme;
            bool actAct;
        };
        std::vector<Entry> entries;
        entries.push_back({"SmoothQuant",
                           std::make_unique<SmoothQuantScheme>(bits),
                           false});
        entries.push_back({"ANT", std::make_unique<AntScheme>(bits),
                           false});
        entries.push_back({"OliVe", std::make_unique<OliveScheme>(bits),
                           false});
        entries.push_back({"Tender (all)",
                           std::make_unique<TenderScheme>(
                               tenderAccuracyConfig(bits)), true});
        entries.push_back({"Tender",
                           std::make_unique<TenderScheme>(
                               tenderAccuracyConfig(bits)), false});
        for (auto &e : entries) {
            std::vector<std::string> row = {"INT" + std::to_string(bits),
                                            e.name};
            for (const auto &c : cells) {
                ExecOptions opts;
                opts.quantizeActAct = e.actAct;
                const double err = schemeError(replica, *e.scheme,
                                               c.dataset, opts,
                                               c.replicaSeq);
                row.push_back(TablePrinter::num(c.ppl.eval(err)));
            }
            table.addRow(row);
        }
        if (bits == 8)
            table.addSeparator();
    }
    table.print();
    return 0;
}
