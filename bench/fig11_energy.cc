/**
 * @file
 * Fig. 11: energy efficiency of the four accelerators, normalized to ANT
 * (same runs as Fig. 10 with the 28 nm event-energy model applied to the
 * simulator's activity counters).
 *
 * Paper geomeans: Tender 1.84x over ANT, 1.53x over OLAccel, 1.24x over
 * OliVe.
 */

#include <cstdio>

#include "sim/baselines.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tender;

int
main()
{
    std::printf("== Fig. 11: energy efficiency over ANT ==\n");
    std::printf("event energies at 28 nm; HBM2 energy per FG-DRAM "
                "(see arch/energy_model.h)\n\n");

    const auto models = speedupModels();
    const auto accels = speedupAccelerators();
    const DramConfig dram = defaultDramConfig();

    TablePrinter table;
    std::vector<std::string> header = {"Accelerator"};
    for (const auto &m : models)
        header.push_back(m.name);
    header.push_back("Geomean");
    table.setHeader(header);

    // energyUj[accel][model]
    std::vector<std::vector<double>> energy(accels.size());
    for (size_t a = 0; a < accels.size(); ++a) {
        const EnergyParams params =
            energyParamsFor(accels[a].name.c_str());
        for (const auto &m : models) {
            AcceleratorSim sim(accels[a], dram);
            SimResult r = sim.run(prefillWorkload(m, 2048));
            energy[a].push_back(computeEnergy(r.counters, params).totalUj);
        }
    }

    for (size_t a = 0; a < accels.size(); ++a) {
        std::vector<std::string> row = {accels[a].name};
        std::vector<double> eff;
        for (size_t mi = 0; mi < models.size(); ++mi) {
            const double e = energy[0][mi] / energy[a][mi];
            eff.push_back(e);
            row.push_back(TablePrinter::mult(e));
        }
        row.push_back(TablePrinter::mult(geomean(eff)));
        table.addRow(row);
    }
    table.print();

    std::printf("\nTender relative to each baseline (geomean):\n");
    for (size_t a = 0; a + 1 < accels.size(); ++a) {
        std::vector<double> rel;
        for (size_t mi = 0; mi < models.size(); ++mi)
            rel.push_back(energy[a][mi] / energy.back()[mi]);
        std::printf("  Tender vs %-8s %s   (paper: %s)\n",
                    accels[a].name.c_str(),
                    TablePrinter::mult(geomean(rel)).c_str(),
                    a == 0 ? "1.84x" : (a == 1 ? "1.53x" : "1.24x"));
    }

    // Per-component breakdown for one model, Tender vs ANT.
    std::printf("\nEnergy breakdown, OPT-6.7B [uJ]:\n");
    TablePrinter bd;
    bd.setHeader({"Accelerator", "compute", "VPU", "SRAM", "FIFO", "DRAM",
                  "decode", "total"});
    for (const auto &cfg : accels) {
        AcceleratorSim sim(cfg, dram);
        SimResult r = sim.run(prefillWorkload(models[0], 2048));
        EnergyBreakdown e =
            computeEnergy(r.counters, energyParamsFor(cfg.name.c_str()));
        bd.addRow({cfg.name, TablePrinter::num(e.computeUj, 0),
                   TablePrinter::num(e.vpuUj, 0),
                   TablePrinter::num(e.sramUj, 0),
                   TablePrinter::num(e.fifoUj, 0),
                   TablePrinter::num(e.dramUj, 0),
                   TablePrinter::num(e.decodeUj, 0),
                   TablePrinter::num(e.totalUj, 0)});
    }
    bd.print();
    return 0;
}
