/**
 * @file
 * Fig. 12: GPU deployment of Tender software — normalized latency and MSE
 * of FP16, INT8 per-tensor/per-row/per-channel, and Tender SW on an RTX
 * 3090 (OPT-6.7B) and an A100 80GB (OPT-66B). Latency from the analytical
 * tensor-core model (gpu/); MSE measured with the real quantizers on the
 * replica's query-projection input at mid depth (the paper's "sample from
 * the query projection in Layer 16").
 *
 * Expected shape: per-tensor/per-row ~0.5x FP16 with high MSE;
 * per-channel slightly above FP16 with low MSE; Tender SW slightly below
 * FP16 with per-channel-class MSE.
 */

#include <cstdio>

#include "gpu/gpu_model.h"
#include "model/transformer.h"
#include "quant/metrics.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

namespace {

void
runDevice(const GpuSpec &gpu, const std::string &model_name)
{
    const ModelConfig full = modelByName(model_name);
    const long long m = 2048; // sequence length
    const long long k = full.dModel;
    const long long n = full.dModel; // query projection: d x d

    // Mid-depth attention input from the replica provides the value
    // distribution for the MSE panel and the measured group sizes (scaled
    // back up to the full reduction length for the latency panel).
    SyntheticModel replica = makeReplica(model_name);
    Matrix x = replica.sampleInput(kSeqLen, 3);
    const ModelConfig &rcfg = replica.config();
    for (int l = 0; l < rcfg.nLayers / 2; ++l)
        x = blockForward(x, replica.blockWeights(l), rcfg);
    const BlockWeights &wmid = replica.blockWeights(rcfg.nLayers / 2);
    const Matrix attn_in = layerNorm(x, wmid.ln1Gain, wmid.ln1Bias);

    // Group sizes from the real decomposition, rescaled to full k.
    TenderConfig tcfg = tenderAccuracyConfig(8);
    tcfg.rowChunk = 0;
    const ChunkMeta meta = decomposeChunk(attn_in, tcfg);
    std::vector<long long> group_sizes;
    for (int g = 0; g < meta.groups(); ++g) {
        const long long scaled = (long long)meta.groupSize(g) * k /
            meta.channels();
        group_sizes.push_back(scaled);
    }
    long long assigned = 0;
    for (long long s : group_sizes)
        assigned += s;
    group_sizes.back() += k - assigned;

    // MSE of each scheme on the sampled activation (weight exact, per the
    // figure's focus on activation quantization).
    const Matrix &ref = attn_in;
    auto scheme_mse = [&](const Matrix &fq) { return mse(ref, fq); };
    const double mse_pt =
        scheme_mse(fakeQuant(ref, 8, Granularity::PerTensor));
    const double mse_pr = scheme_mse(fakeQuant(ref, 8, Granularity::PerRow));
    const double mse_pc =
        scheme_mse(fakeQuant(ref, 8, Granularity::PerColumn));
    const double mse_tender = scheme_mse(
        dequantizeChunk(quantizeChunk(ref, meta, tcfg.bits)));

    const GpuLatency lat[] = {
        fp16Latency(gpu, m, k, n),
        int8PerTensorLatency(gpu, m, k, n),
        int8PerRowLatency(gpu, m, k, n),
        int8PerChannelLatency(gpu, m, k, n),
        tenderSwLatency(gpu, m, group_sizes, n),
    };
    const double mses[] = {0.0, mse_pt, mse_pr, mse_pc, mse_tender};
    const double fp16_us = lat[0].usTotal;

    TablePrinter table(gpu.name + " -- " + model_name +
                       " query projection (" + std::to_string(k) + "x" +
                       std::to_string(n) + ")");
    table.setHeader({"Scheme", "Norm. latency", "Latency [us]", "Kernels",
                     "MSE"});
    for (int i = 0; i < 5; ++i) {
        table.addRow({lat[i].scheme,
                      TablePrinter::num(lat[i].usTotal / fp16_us),
                      TablePrinter::num(lat[i].usTotal, 0),
                      std::to_string(lat[i].kernels),
                      i == 0 ? "-" : TablePrinter::num(mses[i], 6)});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    printBanner("Fig. 12: Tender SW vs GPU quantization schemes");
    runDevice(rtx3090(), "OPT-6.7B");
    runDevice(a100_80g(), "OPT-66B");
    std::printf("Shape check: per-tensor/-row ~0.5x FP16 with high MSE; "
                "per-channel > FP16; Tender SW < FP16 with "
                "per-channel-class MSE (Fig. 12).\n");
    return 0;
}
