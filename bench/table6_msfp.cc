/**
 * @file
 * Table VI: Tender-INT4 vs MSFP12 / MSFP12-OL perplexity on WikiText-2
 * for the three largest models.
 *
 * The proxy is anchored on the two published MSFP rows (which therefore
 * reproduce the paper by construction); the Tender-INT4 row is a genuine
 * prediction of the replica pipeline. Expected shape: MSFP12's
 * reduction-axis blocks mix outlier and normal channels under one shared
 * exponent and collapse; the outlier-aware column-block variant recovers
 * part of it; Tender-INT4 is best.
 */

#include "quant/msfp.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

namespace {

struct PaperRow
{
    const char *model;
    double msfp12;
    double msfp12Ol;
};

const PaperRow kPaper[] = {
    {"OPT-66B", 7e3, 56.69},
    {"Llama-2-70B", 74.61, 15.57},
    {"LLaMA-65B", 73.22, 26.11},
};

} // namespace

int
main()
{
    printBanner("Table VI: Tender vs MSFP block floating point (Wiki)");

    TablePrinter table;
    std::vector<std::string> header = {"Precision"};
    for (const PaperRow &r : kPaper)
        header.push_back(r.model);
    table.setHeader(header);

    std::vector<std::string> base = {"FP16"};
    std::vector<std::string> row12 = {"MSFP12 [anchor]"};
    std::vector<std::string> row_ol = {"MSFP12-OL [anchor]"};
    std::vector<std::string> row_t = {"Tender-INT4"};

    for (const PaperRow &r : kPaper) {
        SyntheticModel replica = makeReplica(r.model);
        const double base_ppl = paperBasePerplexity(r.model, "wiki");
        const double e12 =
            schemeError(replica, MsfpScheme::msfp12(), "wiki");
        const double e_ol =
            schemeError(replica, MsfpScheme::msfp12Ol(), "wiki");
        const double e_t = schemeError(
            replica, TenderScheme(tenderAccuracyConfig(4)), "wiki");
        // Two-anchor mapping on the published MSFP rows (e_ol < e12).
        const PplModel ppl =
            anchorPplModel(base_ppl, e_ol, r.msfp12Ol, e12, r.msfp12);
        base.push_back(TablePrinter::num(base_ppl));
        row12.push_back(TablePrinter::num(ppl.eval(e12)));
        row_ol.push_back(TablePrinter::num(ppl.eval(e_ol)));
        row_t.push_back(TablePrinter::num(ppl.eval(e_t)));
    }
    table.addRow(base);
    table.addSeparator();
    table.addRow(row12);
    table.addRow(row_ol);
    table.addRow(row_t);
    table.print();
    std::printf("\nShape check: Tender-INT4 below both MSFP variants "
                "(paper: 13.38 / 13.43 / 9.30).\n");
    return 0;
}
