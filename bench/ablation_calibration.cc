/**
 * @file
 * Ablation: static calibration vs dynamic (oracle) decomposition
 * (DESIGN.md §4.4). The paper calibrates scale factors, biases, and
 * channel groups offline on 128 Pile samples; this harness sweeps the
 * calibration-set size and compares the held-out GEMM error against
 * per-batch dynamic metadata.
 */

#include <cstdio>

#include "core/calibrate.h"
#include "quant/metrics.h"
#include "tensor/gemm.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

int
main()
{
    printBanner("Ablation: static calibration-set size (OPT-6.7B)");

    SyntheticModel replica = makeReplica("OPT-6.7B");
    const Matrix w = replica.blockWeights(0).wq;
    TenderConfig cfg = tenderAccuracyConfig(8);

    // Held-out evaluation batch.
    const Matrix x_eval = replica.sampleInput(kSeqLen, 999);
    const Matrix ref = gemm(x_eval, w);
    const double nmse_dynamic = nmse(ref, tenderMatmul(x_eval, w, cfg));

    TablePrinter table;
    table.setHeader({"Calibration batches", "Held-out NMSE",
                     "vs dynamic (oracle)"});
    for (int batches : {1, 4, 16, 64, 128}) {
        TenderCalibrator cal(cfg);
        for (int b = 0; b < batches; ++b)
            cal.observe(replica.sampleInput(kSeqLen, uint64_t(b)));
        const auto metas = cal.finalize();
        const double e =
            nmse(ref, tenderMatmulCalibrated(x_eval, w, metas, cfg));
        table.addRow({std::to_string(batches), TablePrinter::num(e, 8),
                      TablePrinter::num(e / nmse_dynamic, 2) + "x"});
    }
    table.addSeparator();
    table.addRow({"dynamic (oracle)", TablePrinter::num(nmse_dynamic, 8),
                  "1.00x"});
    table.print();
    std::printf("\nShape check: a few dozen calibration batches close most "
                "of the gap to oracle per-batch statistics — the paper "
                "uses 128 samples.\n");
    return 0;
}
