/**
 * @file
 * Ablation: row-chunk size (DESIGN.md §4.2). The paper picks 256 tokens
 * per chunk as the balance between intra-channel (token) variance capture
 * and systolic-array utilization; the replica scales the token budget by
 * 1/8, so its equivalent of the paper's 256 is 32.
 */

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

int
main()
{
    printBanner("Ablation: row-chunk size (OPT-6.7B wiki)");

    SyntheticModel replica = makeReplica("OPT-6.7B");
    const PplModel ppl =
        makePplModel("OPT-6.7B", "wiki", measureAnchors(replica, "wiki"));

    TablePrinter table;
    table.setHeader({"Chunk (replica)", "Paper equivalent", "INT4 ppl",
                     "INT8 ppl", "INT4 damage"});
    for (int chunk : {8, 16, 32, 64, 128, 0}) {
        TenderConfig c4 = tenderAccuracyConfig(4);
        TenderConfig c8 = tenderAccuracyConfig(8);
        c4.rowChunk = chunk;
        c8.rowChunk = chunk;
        const double e4 =
            schemeError(replica, TenderScheme(c4), "wiki");
        const double e8 =
            schemeError(replica, TenderScheme(c8), "wiki");
        // Raw damage on a representative activation for the last column.
        const Matrix x = replica.sampleInput(kSeqLen, 1);
        const Matrix w = replica.blockWeights(0).wq;
        const double d4 = TenderScheme(c4).gemmDamage(x, w);
        table.addRow({chunk == 0 ? "whole tensor" : std::to_string(chunk),
                      chunk == 0 ? "no chunking"
                                 : std::to_string(chunk * 8),
                      TablePrinter::num(ppl.eval(e4)),
                      TablePrinter::num(ppl.eval(e8)),
                      TablePrinter::num(d4, 5)});
    }
    table.print();
    std::printf("\nShape check: smaller chunks help steadily down to the "
                "systolic-array dimension; the paper's 256 sits where the "
                "curve flattens.\n");
    return 0;
}
