/**
 * @file
 * Shared machinery for the per-table/per-figure bench harnesses.
 *
 * Accuracy harnesses run the statistical-replica pipeline (DESIGN.md §1):
 * a reduced transformer with family-calibrated outlier statistics executes
 * every GEMM under each scheme; the measured aggregate error maps to the
 * paper's reporting units through the two-anchor proxy of
 * model/perplexity.h. Anchor rows (INT8/INT4 per-tensor) therefore
 * reproduce the paper by construction and are marked as such in
 * EXPERIMENTS.md; every other row is a prediction of the pipeline.
 */

#ifndef TENDER_BENCH_BENCH_COMMON_H
#define TENDER_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/tender_scheme.h"
#include "model/perplexity.h"
#include "model/quant_executor.h"
#include "quant/granularity.h"
#include "tensor/kernels.h"
#include "util/rng.h"
#include "util/table.h"

namespace tender {
namespace bench {

/** Name of the fixed reference workload behind calibrationScoreMflops(),
 *  recorded next to the score so scale mismatches are detectable. */
constexpr const char *kCalibrationWorkload = "serial_fp32_gemm_96x96x96_x4";

/**
 * Fixed reference-workload calibration score for the machine running a
 * bench: best-of-3 timing of a deterministic single-threaded 96^3 GEMM
 * repeated 4x, in MFLOP/s. scripts/check_bench.py --compare-baseline
 * divides the baseline's score by the candidate's to normalize tokens/s
 * before applying the regression threshold, so a slower (or noisy-shared)
 * hosted runner stops reading as a perf regression. Single-threaded and
 * allocation-light on purpose: the score must track the machine, not the
 * worker count or the allocator.
 */
inline double
calibrationScoreMflops()
{
    KernelContext serial(Backend::Serial);
    Rng rng(7);
    const int n = 96, reps = 4;
    const Matrix a = randomGaussian(n, n, rng);
    const Matrix b = randomGaussian(n, n, rng);
    double best = 0.0;
    double sink = 0.0; // keep the repeated GEMMs observable
    for (int attempt = 0; attempt < 3; ++attempt) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r)
            sink += double(serial.gemm(a, b)(0, 0));
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        best = std::max(best, 2.0 * n * n * n * reps / s * 1e-6);
    }
    if (sink == 0.12345) // never true; defeats dead-code elimination
        std::printf("calibration sink %f\n", sink);
    return best;
}

/** Replica shrink factor and evaluation sequence length used by all
 *  accuracy harnesses (printed in every harness header). */
constexpr int kReplicaDivisor = 32;
constexpr int kSeqLen = 128;

/** Seeds: dataset identity enters through the eval batch seed. */
inline uint64_t
datasetSeed(const std::string &dataset)
{
    return dataset == "wiki" ? 1000 : 2000;
}

/** Build the replica model for a paper model name. */
inline SyntheticModel
makeReplica(const std::string &model_name, uint64_t seed = 1)
{
    return SyntheticModel(replicaOf(modelByName(model_name),
                                    kReplicaDivisor), seed);
}

/** Aggregate error of one scheme on one model/dataset. */
inline double
schemeError(SyntheticModel &model, const GemmScheme &scheme,
            const std::string &dataset, const ExecOptions &opts = {},
            int seq_len = kSeqLen)
{
    const Matrix input = model.sampleInput(seq_len, datasetSeed(dataset));
    return aggregateError(runQuantized(model, input, scheme, opts).records);
}

/** Per-tensor INT8/INT4 anchor errors for the proxy mapping. */
struct AnchorErrors
{
    double e8 = 0.0;
    double e4 = 0.0;
};

inline AnchorErrors
measureAnchors(SyntheticModel &model, const std::string &dataset,
               const ExecOptions &opts = {}, int seq_len = kSeqLen)
{
    AnchorErrors a;
    a.e8 = schemeError(model, UniformScheme(8, Granularity::PerTensor),
                       dataset, opts, seq_len);
    a.e4 = schemeError(model, UniformScheme(4, Granularity::PerTensor),
                       dataset, opts, seq_len);
    return a;
}

/** Proxy-perplexity mapping for one model/dataset pair. */
inline PplModel
makePplModel(const std::string &model_name, const std::string &dataset,
             const AnchorErrors &anchors)
{
    double p8 = 0, p4 = 0;
    paperAnchorPerplexities(model_name, dataset, p8, p4);
    return anchorPplModel(paperBasePerplexity(model_name, dataset),
                          anchors.e8, p8, anchors.e4, p4);
}

/** Tender configuration used across accuracy harnesses (paper defaults,
 *  row chunk shrunk with the replica). */
inline TenderConfig
tenderAccuracyConfig(int bits, int num_groups = 8)
{
    TenderConfig cfg;
    cfg.bits = bits;
    cfg.numGroups = num_groups;
    cfg.rowChunk = 32; // 256 scaled by the replica's 1/8 token budget
    return cfg;
}

/** Harness banner: what replica the numbers come from. */
inline void
printBanner(const std::string &what)
{
    std::printf("== %s ==\n", what.c_str());
    std::printf("substrate: synthetic statistical replica "
                "(divisor %d, seq %d); anchor rows marked [anchor] "
                "reproduce the paper by construction -- see DESIGN.md\n\n",
                kReplicaDivisor, kSeqLen);
}

} // namespace bench
} // namespace tender

#endif // TENDER_BENCH_BENCH_COMMON_H
