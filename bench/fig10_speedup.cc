/**
 * @file
 * Fig. 10: end-to-end speedup of the four accelerators on six LLMs,
 * normalized to ANT (batch 1, prefill 2048, iso-area PE arrays, shared
 * HBM2 stack).
 *
 * Paper geomeans: Tender 2.63x over ANT, 1.84x over OLAccel, 1.48x over
 * OliVe.
 */

#include <cstdio>

#include "sim/baselines.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tender;

int
main()
{
    std::printf("== Fig. 10: speedup over ANT (prefill 2048, batch 1) ==\n");
    std::printf("cycle-level simulator, true model dimensions, iso-area "
                "arrays (see bench/table5_area_power)\n\n");

    const auto models = speedupModels();
    const auto accels = speedupAccelerators();
    const DramConfig dram = defaultDramConfig();

    TablePrinter table;
    std::vector<std::string> header = {"Accelerator"};
    for (const auto &m : models)
        header.push_back(m.name);
    header.push_back("Geomean");
    table.setHeader(header);

    // cycles[accel][model]
    std::vector<std::vector<double>> cycles(accels.size());
    for (size_t a = 0; a < accels.size(); ++a) {
        for (const auto &m : models) {
            AcceleratorSim sim(accels[a], dram);
            cycles[a].push_back(
                double(sim.run(prefillWorkload(m, 2048)).cycles));
        }
    }

    for (size_t a = 0; a < accels.size(); ++a) {
        std::vector<std::string> row = {accels[a].name};
        std::vector<double> speedups;
        for (size_t mi = 0; mi < models.size(); ++mi) {
            const double s = cycles[0][mi] / cycles[a][mi];
            speedups.push_back(s);
            row.push_back(TablePrinter::mult(s));
        }
        row.push_back(TablePrinter::mult(geomean(speedups)));
        table.addRow(row);
    }
    table.print();

    std::printf("\nTender relative to each baseline (geomean):\n");
    for (size_t a = 0; a + 1 < accels.size(); ++a) {
        std::vector<double> rel;
        for (size_t mi = 0; mi < models.size(); ++mi)
            rel.push_back(cycles[a][mi] / cycles.back()[mi]);
        std::printf("  Tender vs %-8s %s   (paper: %s)\n",
                    accels[a].name.c_str(),
                    TablePrinter::mult(geomean(rel)).c_str(),
                    a == 0 ? "2.63x" : (a == 1 ? "1.84x" : "1.48x"));
    }
    return 0;
}
