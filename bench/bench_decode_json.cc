/**
 * @file
 * Decode-runtime performance recorder: continuous-batching tokens/s at
 * batch 1/4/16 with fp32 and Tender-quantized KV caches, emitted as
 * BENCH_decode.json so the serving-path perf trajectory is tracked PR
 * over PR (run via scripts/bench_decode.sh).
 *
 * The batched gains come from the scheduler batching the QKV/O/FFN
 * projections of all active requests into single GEMMs — one pass over
 * the weights serves the whole batch — exactly the Section VI-D argument
 * that batching restores decode utilization; attention stays per request
 * over its own cache. The quantized-KV rows additionally record the
 * requantize-at-append / dequantize-on-read overhead and the cache
 * shrinkage.
 *
 * Usage: bench_decode_json [prompt new_tokens workers out.json]
 * Defaults: 16 32 8 BENCH_decode.json
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "runtime/batch_scheduler.h"

using namespace tender;

namespace {

using Clock = std::chrono::steady_clock;

struct BatchPoint
{
    int batch = 0;
    double tokensPerS = 0.0;
    double stepsPerS = 0.0;
    int64_t steps = 0;
    size_t cacheBytesPerRequest = 0;
};

BatchPoint
runBatchOnce(SyntheticModel &model, const KernelContext &kc, int batch,
             int prompt_len, int new_tokens, KVCacheMode mode)
{
    SchedulerOptions options;
    options.maxBatch = batch;
    options.vocabSize = 256;
    options.decode.kernels = &kc;
    options.decode.cache.mode = mode;
    options.decode.cache.tender.rowChunk = 16;
    BatchScheduler scheduler(model, options);
    for (int id = 0; id < batch; ++id) {
        GenRequest r;
        r.id = id;
        for (int t = 0; t < prompt_len; ++t)
            r.promptTokens.push_back((id * 37 + t * 13) %
                                     options.vocabSize);
        r.maxNewTokens = new_tokens;
        scheduler.submit(r);
    }
    const auto t0 = Clock::now();
    const auto results = scheduler.drain();
    const double s = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
    TENDER_CHECK(int(results.size()) == batch);
    BatchPoint p;
    p.batch = batch;
    p.steps = scheduler.stats().steps;
    p.tokensPerS = double(scheduler.stats().decodedTokens) / s;
    p.stepsPerS = double(p.steps) / s;
    // One request's end-of-run cache footprint (outside the timing).
    DecodeOptions dopt;
    dopt.kernels = &kc;
    dopt.cache = options.decode.cache;
    DecodeEngine engine(model, dopt);
    GreedyVocab vocab(options.vocabSize, model.config().dModel,
                      options.vocabSeed);
    std::vector<int> prompt(size_t(prompt_len + new_tokens - 1), 1);
    engine.prefill(vocab.embedAll(prompt));
    p.cacheBytesPerRequest = engine.cache().storedBytes();
    return p;
}

/** Best of two runs: decode steps are short, so a single scheduler drain
 *  is noticeably jittery on an oversubscribed 1-hw-thread container. */
BatchPoint
runBatch(SyntheticModel &model, const KernelContext &kc, int batch,
         int prompt_len, int new_tokens, KVCacheMode mode)
{
    BatchPoint best =
        runBatchOnce(model, kc, batch, prompt_len, new_tokens, mode);
    const BatchPoint again =
        runBatchOnce(model, kc, batch, prompt_len, new_tokens, mode);
    return again.tokensPerS > best.tokensPerS ? again : best;
}

void
emitMode(FILE *f, const char *key, const std::vector<BatchPoint> &points,
         bool trailing_comma)
{
    std::fprintf(f, "  \"%s\": {\n", key);
    for (size_t i = 0; i < points.size(); ++i) {
        const BatchPoint &p = points[i];
        std::fprintf(f,
                     "    \"batch_%d\": {\"tokens_per_s\": %.2f, "
                     "\"steps_per_s\": %.2f, \"steps\": %lld, "
                     "\"cache_bytes_per_request\": %zu}%s\n",
                     p.batch, p.tokensPerS, p.stepsPerS,
                     (long long)p.steps, p.cacheBytesPerRequest,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  }%s\n", trailing_comma ? "," : "");
}

} // namespace

int
main(int argc, char **argv)
{
    const int prompt_len = argc > 1 ? std::atoi(argv[1]) : 16;
    const int new_tokens = argc > 2 ? std::atoi(argv[2]) : 32;
    const int workers = argc > 3 ? std::atoi(argv[3]) : 8;
    const char *out_path = argc > 4 ? argv[4] : "BENCH_decode.json";

    const ModelConfig config = replicaOf(modelByName("OPT-6.7B"), 32);
    SyntheticModel model(config, 5);
    KernelContext kc(Backend::Threaded, workers);

    std::printf("== BENCH decode: %s (d=%d, layers=%d), prompt %d, "
                "%d tokens/request, %d workers ==\n",
                config.name.c_str(), config.dModel, config.nLayers,
                prompt_len, new_tokens, workers);

    // Warm the lazily generated weights out of the measurement.
    runBatch(model, kc, 1, prompt_len, 2, KVCacheMode::Fp32);

    const std::vector<int> batches = {1, 4, 16};
    std::vector<BatchPoint> fp32, quant;
    for (int b : batches) {
        fp32.push_back(runBatch(model, kc, b, prompt_len, new_tokens,
                                KVCacheMode::Fp32));
        std::printf("fp32-KV   batch %2d: %8.1f tokens/s (%lld steps)\n",
                    b, fp32.back().tokensPerS,
                    (long long)fp32.back().steps);
        quant.push_back(runBatch(model, kc, b, prompt_len, new_tokens,
                                 KVCacheMode::TenderQuantized));
        std::printf("tender-KV batch %2d: %8.1f tokens/s (%lld steps)\n",
                    b, quant.back().tokensPerS,
                    (long long)quant.back().steps);
    }
    const double speedup4 = fp32[1].tokensPerS / fp32[0].tokensPerS;
    const double speedup16 = fp32[2].tokensPerS / fp32[0].tokensPerS;
    std::printf("continuous batching speedup (fp32-KV): batch 4 %.2fx, "
                "batch 16 %.2fx vs batch 1\n", speedup4, speedup16);

    FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"model\": {\"name\": \"%s\", \"d_model\": %d, "
                 "\"n_heads\": %d, \"n_layers\": %d, \"d_ffn\": %d},\n",
                 config.name.c_str(), config.dModel, config.nHeads,
                 config.nLayers, config.dFfn);
    std::fprintf(f, "  \"prompt_tokens\": %d,\n", prompt_len);
    std::fprintf(f, "  \"new_tokens_per_request\": %d,\n", new_tokens);
    std::fprintf(f, "  \"workers\": %d,\n", workers);
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    emitMode(f, "fp32_kv", fp32, true);
    emitMode(f, "tender_kv", quant, true);
    std::fprintf(f,
                 "  \"fp32_batched_speedup\": {\"batch_4\": %.3f, "
                 "\"batch_16\": %.3f}\n",
                 speedup4, speedup16);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
    return 0;
}
