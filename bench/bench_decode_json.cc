/**
 * @file
 * Decode-runtime performance recorder: continuous-batching tokens/s at
 * batch 1/4/16 with fp32 and Tender-quantized KV caches — the latter both
 * through the dequantize-on-read oracle and the fused integer-domain
 * attention path (DecodeOptions::fusedQuantKv) — plus a churned
 * mixed-batch scenario comparing the paged KV layout against contiguous
 * per-request slabs, emitted as BENCH_decode.json so the serving-path
 * perf trajectory is tracked PR over PR (run via scripts/bench_decode.sh).
 *
 * The batched gains come from the scheduler batching the QKV/O/FFN
 * projections of all active requests into single GEMMs — one pass over
 * the weights serves the whole batch — exactly the Section VI-D argument
 * that batching restores decode utilization; attention stays per request
 * over its own cache. The quantized-KV rows additionally record the
 * requantize-at-append / dequantize-on-read overhead and the cache
 * shrinkage.
 *
 * The churn scenario interleaves mixed-length requests through a batch
 * whose slots turn over continuously. Both arms run the same paged
 * machinery; the "contiguous" arm sets blockTokens to the largest
 * request's footprint so every store holds exactly one block — a
 * per-request slab, which is what contiguous preallocation commits. Peak
 * KV bytes are read from the BlockAllocator occupancy stats; the paged
 * arm must be smaller at statistically equal tokens/s.
 *
 * The shared-system-prompt scenario exercises copy-on-write prefix
 * caching (SchedulerOptions::prefixCache): a leader's prefill publishes
 * the system prompt's KV blocks, followers adopt them and prefill only
 * their private suffixes. Recorded: prefill rows skipped, peak KV bytes
 * vs the no-sharing arm, COW fault counts, and two gated correctness
 * fields — prefix_reuse_bitexact (shared-prefix decode produces the same
 * tokens as cold decode in both KV modes, and adopted quantized pages
 * carry bit-identical chunk codes) and refcounts_consistent (the pool's
 * refcount audit passes and clearing the prefix cache returns every
 * block).
 *
 * The "mq_panels" scenario runs a GQA replica (Llama-2-70B/64: 4 query
 * heads per kv head) with the multi-query attention panels
 * (DecodeOptions::mqAttentionPanels) on vs off, in both KV modes — the
 * panel batching only has something to amortize when several query heads
 * share one kv history, which the OPT replica (kvHeads == nHeads) never
 * exercises.
 *
 * The "mixed_traffic" scenario drives the serving front end
 * (serve/serve_session.h) with the three traffic classes a real fleet
 * mixes — chat turns sharing a system prompt (interactive, sampled),
 * long-document prefills (batch class, greedy), and short completions
 * (interactive, sampled) — with the prefix cache on and the block pool
 * bounded, so prefix hits, pool pressure, priority overtakes, and seeded
 * sampling are exercised together. Recorded: tokens/s, prefix hits,
 * deferrals, overtakes, and per-priority-class TTFT and inter-token
 * latency p50/p95; gated: sampling_order_independent — every request's
 * sampled tokens are bit-identical under reversed admission order, a
 * different batch cap, and a different worker count.
 *
 * The "preemption_pressure" scenario bounds the block pool so a burst of
 * Interactive requests arriving mid-run cannot be seated while
 * Batch-class requests with long budgets hold every reservation, and
 * runs the identical workload with mid-decode preemption on
 * (maxPreemptions 2) and off. Recorded: Interactive TTFT p95 for both
 * arms (preemption on must not wait for a Batch budget to drain),
 * preemption/resume/deferral counters, tokens/s; gated:
 * preempt_resume_bitexact — every request's tokens are identical across
 * arms (the off arm runs uninterrupted, so this is the freeze/park/
 * resume replay contract in both KV modes, and the on arm must actually
 * preempt for the gate to count) — and the park-accounting audit
 * (refcounts consistent, parks == unparks, zero parked blocks at drain,
 * every block returned once the prefix cache clears).
 *
 * The "fault_churn" scenario replays the mixed-traffic workload under a
 * seeded fault plan (util/fault_injection.h: injected KV-allocation
 * failures, throwing streaming callbacks, step-latency stalls) plus
 * front-door shedding (a queue-depth bound sized to reject two
 * submissions, and two requests whose 1 us deadline expires before
 * admission), in all three decode arms (fp32, quantized, fused).
 * Recorded per arm: survivor tokens/s, finished/failed counts, sheds by
 * cause, and the injector's fired-trigger counts; gated:
 * fault_isolation_bitexact — every request the plan did not fail
 * generates bit-identical tokens to the fault-free reference run (the
 * fail-one-not-the-batch containment contract, docs/robustness.md) —
 * and the leak audit (refcounts consistent, every block and reservation
 * home after drain in both arms of all three modes).
 *
 * The "spec_decode" scenario measures speculative decoding
 * (docs/speculation.md) on a repetitive-suffix workload: the
 * prompt-lookup and draft-model drafters at k in {2, 4, 8} against the
 * plain baseline, per KV arm (fp32 / tender / tender_fused). Recorded
 * per point: tokens/s, acceptance rate, drafted/accepted counts, steps,
 * speedup over plain; gated: spec_decode_bitexact — every speculative
 * run's tokens are bit-identical to the plain run's in every arm, at
 * every k, with both drafters (the accept-only-what-the-model-would-emit
 * verification contract).
 *
 * The "correctness" block records machine-checkable invariants (fp32
 * decode bit-parity with full prefill, quantized-KV NMSE under its
 * bound, fused-vs-dequantize attention NMSE under its bound,
 * mq_panel_bitexact — MQ-panel decode reproduces per-head decode bit for
 * bit in every KV mode on both model shapes, the row-locality contract —
 * and paged-vs-contiguous peak ratio > 1); scripts/check_bench.py gates
 * CI on them. The fused/dequantize tokens/s ratio is recorded (not
 * gated) as fused_over_dequant_tokens_ratio. The decode kernel context
 * is the packed arm (Backend::Packed), recorded in the "simd"/"backend"
 * fields so every number is attributable to the kernel arm that produced
 * it; the reference forward in the correctness check runs on the same
 * context, so bit-parity claims compare like with like.
 *
 * A fixed reference-workload calibration score (bench_common.h) is
 * recorded so check_bench.py --compare-baseline can normalize tokens/s
 * across machine speeds; in --smoke mode every throughput point is the
 * best of 3 repetitions, which together make the hosted-runner baseline
 * comparison a usable signal instead of noise.
 *
 * Usage: bench_decode_json [--smoke] [prompt new_tokens workers out.json]
 * Defaults: 16 32 8 BENCH_decode.json (--smoke: 8 6 2, reduced batches
 * and churn, for the CI smoke job).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "model/transformer.h"
#include "quant/metrics.h"
#include "runtime/batch_scheduler.h"
#include "serve/serve_session.h"
#include "util/cpu_features.h"
#include "util/fault_injection.h"
#include "util/rng.h"

using namespace tender;

namespace {

using Clock = std::chrono::steady_clock;

struct BatchPoint
{
    int batch = 0;
    double tokensPerS = 0.0;
    double stepsPerS = 0.0;
    int64_t steps = 0;
    size_t cacheBytesPerRequest = 0;
};

BatchPoint
runBatchOnce(SyntheticModel &model, const KernelContext &kc, int batch,
             int prompt_len, int new_tokens, KVCacheMode mode, bool fused,
             bool mq)
{
    SchedulerOptions options;
    options.maxBatch = batch;
    options.vocabSize = 256;
    options.decode.kernels = &kc;
    options.decode.cache.mode = mode;
    options.decode.cache.tender.rowChunk = 16;
    options.decode.fusedQuantKv = fused;
    options.decode.mqAttentionPanels = mq;
    BatchScheduler scheduler(model, options);
    for (int id = 0; id < batch; ++id) {
        GenRequest r;
        r.id = id;
        for (int t = 0; t < prompt_len; ++t)
            r.promptTokens.push_back((id * 37 + t * 13) %
                                     options.vocabSize);
        r.maxNewTokens = new_tokens;
        scheduler.submit(r);
    }
    const auto t0 = Clock::now();
    const auto results = scheduler.drain();
    const double s = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
    TENDER_CHECK(int(results.size()) == batch);
    BatchPoint p;
    p.batch = batch;
    p.steps = scheduler.stats().steps;
    p.tokensPerS = double(scheduler.stats().decodedTokens) / s;
    p.stepsPerS = double(p.steps) / s;
    // One request's end-of-run cache footprint (outside the timing).
    DecodeOptions dopt;
    dopt.kernels = &kc;
    dopt.cache = options.decode.cache;
    dopt.fusedQuantKv = fused;
    dopt.mqAttentionPanels = mq;
    DecodeEngine engine(model, dopt);
    Vocab vocab(options.vocabSize, model.config().dModel,
                options.vocabSeed);
    std::vector<int> prompt(size_t(prompt_len + new_tokens - 1), 1);
    engine.prefill(vocab.embedAll(prompt));
    p.cacheBytesPerRequest = engine.cache().storedBytes();
    return p;
}

/** Best of `reps` runs: decode steps are short, so a single scheduler
 *  drain is noticeably jittery on an oversubscribed 1-hw-thread
 *  container. The CI smoke job uses 3 repetitions (vs 2 at full scale)
 *  so the recorded tokens/s is stable enough for the baseline
 *  comparison. */
BatchPoint
runBatch(SyntheticModel &model, const KernelContext &kc, int batch,
         int prompt_len, int new_tokens, KVCacheMode mode,
         bool fused = false, int reps = 2, bool mq = true)
{
    BatchPoint best = runBatchOnce(model, kc, batch, prompt_len, new_tokens,
                                   mode, fused, mq);
    for (int r = 1; r < reps; ++r) {
        const BatchPoint again = runBatchOnce(model, kc, batch, prompt_len,
                                              new_tokens, mode, fused, mq);
        if (again.tokensPerS > best.tokensPerS)
            best = again;
    }
    return best;
}

// ---- Churned mixed batch: paged vs contiguous slabs ---------------------

struct ChurnSpec
{
    int maxBatch = 8;
    int rowChunk = 16;
    std::vector<GenRequest> requests;
    int maxRequestTokens = 0; ///< largest prompt + new - 1, chunk-rounded
};

ChurnSpec
churnSpec(bool smoke)
{
    ChurnSpec spec;
    spec.maxBatch = smoke ? 4 : 8;
    const int n_requests = smoke ? 10 : 24;
    const int prompts[] = {8, 24, 48};
    const int budgets[] = {8, 40};
    for (int id = 0; id < n_requests; ++id) {
        GenRequest r;
        r.id = id;
        const int prompt = prompts[id % 3] / (smoke ? 2 : 1);
        const int budget = budgets[id % 2] / (smoke ? 2 : 1);
        for (int t = 0; t < prompt; ++t)
            r.promptTokens.push_back((id * 31 + t * 7) % 256);
        r.maxNewTokens = budget;
        spec.requests.push_back(r);
        const int tokens = prompt + budget - 1;
        spec.maxRequestTokens = std::max(spec.maxRequestTokens, tokens);
    }
    spec.maxRequestTokens =
        (spec.maxRequestTokens + spec.rowChunk - 1) / spec.rowChunk *
        spec.rowChunk;
    return spec;
}

struct ChurnPoint
{
    double tokensPerS = 0.0;
    size_t peakKvBytes = 0;
    size_t peakCommittedBytes = 0;
    size_t createdBlocks = 0;
    int64_t allocations = 0;
    int64_t reuses = 0;
    size_t blockTokens = 0;
};

ChurnPoint
runChurnOnce(SyntheticModel &model, const KernelContext &kc,
             const ChurnSpec &spec, KVCacheMode mode, bool paged)
{
    SchedulerOptions options;
    options.maxBatch = spec.maxBatch;
    options.vocabSize = 256;
    options.decode.kernels = &kc;
    options.decode.cache.mode = mode;
    options.decode.cache.tender.rowChunk = spec.rowChunk;
    // Contiguous arm: one slab-sized block per store, allocated in full at
    // the request's first append — what per-request contiguous buffers
    // commit. Chunk size (and therefore numerics) is identical either way.
    options.decode.cache.blockTokens =
        paged ? spec.rowChunk : spec.maxRequestTokens;
    BatchScheduler scheduler(model, options);
    for (const GenRequest &r : spec.requests)
        scheduler.submit(r);
    const auto t0 = Clock::now();
    const auto results = scheduler.drain();
    const double s = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
    TENDER_CHECK(results.size() == spec.requests.size());
    const BlockPoolStats ps = scheduler.poolStats();
    ChurnPoint p;
    p.tokensPerS = double(scheduler.stats().decodedTokens) / s;
    p.peakKvBytes = ps.peakAllocatedBytes();
    p.peakCommittedBytes = ps.peakCommittedBytes();
    p.createdBlocks = ps.createdBlocks;
    p.allocations = ps.allocations;
    p.reuses = ps.reuses;
    p.blockTokens = ps.blockTokens;
    return p;
}

ChurnPoint
runChurn(SyntheticModel &model, const KernelContext &kc,
         const ChurnSpec &spec, KVCacheMode mode, bool paged)
{
    ChurnPoint best = runChurnOnce(model, kc, spec, mode, paged);
    for (int i = 0; i < 2; ++i) {
        const ChurnPoint again = runChurnOnce(model, kc, spec, mode, paged);
        if (again.tokensPerS > best.tokensPerS)
            best = again;
    }
    return best;
}

// ---- Shared-system-prompt mixed batch: COW prefix caching ---------------

struct PrefixSpec
{
    int sysLen = 40;
    int maxBatch = 4;
    std::vector<GenRequest> requests; ///< leader first
};

/** A leader whose prompt covers the system prompt with whole blocks plus
 *  followers that share it and diverge in short private suffixes (kept
 *  short so their own inserts deduplicate against the leader's entry
 *  instead of pinning new blocks). blockTokens is 16 with rowChunk 8, so
 *  the fp32 arm COW-faults on the mid-block divergence row and the
 *  quantized arm on the chunk-aligned mid-page match. */
PrefixSpec
prefixSpec(bool smoke)
{
    PrefixSpec spec;
    spec.sysLen = smoke ? 24 : 40;
    spec.maxBatch = smoke ? 3 : 4;
    const int followers = smoke ? 6 : 10;
    const int new_tokens = smoke ? 5 : 8;
    std::vector<int> sys;
    for (int t = 0; t < spec.sysLen; ++t)
        sys.push_back((11 + t * 3) % 256);
    GenRequest leader;
    leader.id = 0;
    leader.promptTokens = sys;
    for (int t = 0; t < 8; ++t)
        leader.promptTokens.push_back((90 + t) % 256);
    leader.maxNewTokens = new_tokens;
    spec.requests.push_back(leader);
    for (int id = 1; id <= followers; ++id) {
        GenRequest r;
        r.id = id;
        r.promptTokens = sys;
        const int suffix = 3 + (id - 1) % 5;
        for (int t = 0; t < suffix; ++t)
            r.promptTokens.push_back((130 + id * 11 + t) % 256);
        r.maxNewTokens = new_tokens;
        spec.requests.push_back(r);
    }
    return spec;
}

struct PrefixPoint
{
    double tokensPerS = 0.0;
    size_t peakKvBytes = 0;
    int64_t skippedRows = 0;
    int64_t hits = 0;
    int64_t cowCopies = 0;
    int64_t shares = 0;
    bool refcountsOk = true;
    std::vector<GenResult> results;
};

PrefixPoint
runPrefixOnce(SyntheticModel &model, const KernelContext &kc,
              const PrefixSpec &spec, KVCacheMode mode, bool sharing)
{
    SchedulerOptions options;
    options.maxBatch = spec.maxBatch;
    options.vocabSize = 256;
    options.decode.kernels = &kc;
    options.decode.cache.mode = mode;
    options.decode.cache.tender.rowChunk = 8;
    options.decode.cache.blockTokens = 16;
    options.prefixCache = sharing;
    BatchScheduler scheduler(model, options);
    const auto t0 = Clock::now();
    // Warm the cache with the leader's prefill before the followers
    // arrive — the serving pattern prefix caching exists for (a system
    // prompt computed once, reused across the fleet).
    scheduler.submit(spec.requests.front());
    scheduler.step();
    for (size_t i = 1; i < spec.requests.size(); ++i)
        scheduler.submit(spec.requests[i]);
    auto results = scheduler.drain();
    const double s = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
    TENDER_CHECK(results.size() == spec.requests.size());
    PrefixPoint p;
    p.tokensPerS = double(scheduler.stats().decodedTokens) / s;
    const BlockPoolStats ps = scheduler.poolStats();
    p.peakKvBytes = ps.peakAllocatedBytes();
    p.skippedRows = scheduler.stats().prefillSkippedRows;
    p.hits = scheduler.stats().prefixHits;
    p.cowCopies = ps.cowCopies;
    p.shares = ps.shares;
    p.results = std::move(results);
    // Refcount audit: after drain only entry-held blocks survive, and
    // clearing the prefix cache must hand every block back to the pool.
    p.refcountsOk = scheduler.pool().refcountsConsistent();
    if (scheduler.prefixCache() != nullptr) {
        scheduler.prefixCache()->clear();
        const BlockPoolStats after = scheduler.poolStats();
        p.refcountsOk = p.refcountsOk && after.allocatedBlocks == 0 &&
            after.reservedBlocks == 0 && after.sharedBlocks == 0 &&
            scheduler.pool().refcountsConsistent();
    }
    return p;
}

PrefixPoint
runPrefix(SyntheticModel &model, const KernelContext &kc,
          const PrefixSpec &spec, KVCacheMode mode, bool sharing, int reps)
{
    PrefixPoint best = runPrefixOnce(model, kc, spec, mode, sharing);
    for (int r = 1; r < reps; ++r) {
        PrefixPoint again = runPrefixOnce(model, kc, spec, mode, sharing);
        again.refcountsOk = again.refcountsOk && best.refcountsOk;
        if (again.tokensPerS > best.tokensPerS)
            best = std::move(again);
        else
            best.refcountsOk = best.refcountsOk && again.refcountsOk;
    }
    return best;
}

/** Same per-request tokens with and without sharing (per id; drain sorts
 *  by id, so positions correspond). */
bool
sameTokens(const std::vector<GenResult> &a, const std::vector<GenResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].id != b[i].id || a[i].tokens != b[i].tokens)
            return false;
    return true;
}

/** Adopted quantized pages must read bit-identically to a cold cache that
 *  computed the same rows itself: same chunk codes, scale tables, biases,
 *  groups — the codes-on-page half of prefix_reuse_bitexact. */
bool
sharedPagesBitIdentical(const ModelConfig &config)
{
    KVCacheConfig qc;
    qc.mode = KVCacheMode::TenderQuantized;
    qc.tender.rowChunk = 8;
    qc.blockTokens = 16;
    BlockAllocator pool(blockPoolConfigFor(config, qc, 0));
    PrefixCache prefix(config, qc, &pool);
    Rng rng(123);
    const int rows = 48;
    const int cols = config.kvHeads * config.headDim();
    const Matrix k = randomGaussian(rows, cols, rng);
    const Matrix v = randomGaussian(rows, cols, rng);
    KVCache donor(config, qc, &pool);
    for (int l = 0; l < config.nLayers; ++l)
        donor.append(l, k, v);
    std::vector<int> tokens;
    for (int t = 0; t < rows; ++t)
        tokens.push_back(t);
    prefix.insert(tokens, donor);
    std::vector<int> prompt = tokens;
    prompt.push_back(999);
    const PrefixMatch m = prefix.match(prompt);
    if (m.rows != rows)
        return false;
    KVCache adopted(config, qc, &pool);
    prefix.adopt(m, adopted);
    KVCache cold(config, qc, &pool);
    for (int l = 0; l < config.nLayers; ++l)
        cold.append(l, k, v);
    for (int l = 0; l < config.nLayers; ++l) {
        for (int h = 0; h < config.kvHeads; ++h) {
            for (const bool value : {false, true}) {
                const KVCodeView a = value ? adopted.valueView(l, h)
                                           : adopted.keyView(l, h);
                const KVCodeView c = value ? cold.valueView(l, h)
                                           : cold.keyView(l, h);
                if (a.frozen.size() != c.frozen.size())
                    return false;
                for (size_t i = 0; i < a.frozen.size(); ++i) {
                    const QuantizedChunk &qa = *a.frozen[i];
                    const QuantizedChunk &qc2 = *c.frozen[i];
                    if (!(qa.codes == qc2.codes) || qa.bits != qc2.bits ||
                        qa.meta.scale != qc2.meta.scale ||
                        qa.meta.bias != qc2.meta.bias ||
                        qa.meta.group != qc2.meta.group)
                        return false;
                }
            }
        }
    }
    return true;
}

// ---- Mixed-traffic serving scenario -------------------------------------

/** Chat turns (interactive, shared system prompt, sampled), long-document
 *  prefills (batch class, long unique prompts, short budgets), and short
 *  completions (interactive, sampled) in one pot — prefix hits, pool
 *  pressure, priority overtakes, and seeded sampling all at once. */
struct TrafficSpec
{
    int maxBatch = 4;
    size_t poolBlocks = 0;
    int chat = 0, longDoc = 0, shortCompl = 0;
    std::vector<ServeRequest> requests;
};

TrafficSpec
trafficSpec(const ModelConfig &config, const KVCacheConfig &cache,
            bool smoke)
{
    TrafficSpec spec;
    spec.maxBatch = smoke ? 3 : 4;
    spec.chat = smoke ? 4 : 8;
    spec.longDoc = smoke ? 2 : 4;
    spec.shortCompl = smoke ? 4 : 8;

    std::vector<int> sys;
    for (int t = 0; t < (smoke ? 16 : 32); ++t)
        sys.push_back((17 + t * 5) % 256);
    const int doc_len = smoke ? 48 : 96;

    int max_tokens = 0;
    auto add = [&](ServeRequest r) {
        max_tokens = std::max(
            max_tokens, int(r.promptTokens.size()) + r.maxNewTokens - 1);
        spec.requests.push_back(std::move(r));
    };
    // Interleave the classes the way independent clients would arrive.
    for (int i = 0;
         i < std::max(spec.chat, std::max(spec.longDoc, spec.shortCompl));
         ++i) {
        if (i < spec.chat) {
            ServeRequest r;
            r.promptTokens = sys;
            for (int t = 0; t < 5 + i % 4; ++t)
                r.promptTokens.push_back((60 + i * 13 + t) % 256);
            r.maxNewTokens = smoke ? 6 : 10;
            r.priority = Priority::Interactive;
            r.sampling.temperature = 0.8f;
            r.sampling.topK = 20;
            r.sampling.topP = 0.95f;
            r.sampling.seed = 100 + uint64_t(i);
            add(std::move(r));
        }
        if (i < spec.longDoc) {
            ServeRequest r;
            for (int t = 0; t < doc_len; ++t)
                r.promptTokens.push_back((i * 41 + t * 3) % 256);
            r.maxNewTokens = smoke ? 3 : 4; // summarize: long in, short out
            r.priority = Priority::Batch;   // greedy (temperature 0)
            add(std::move(r));
        }
        if (i < spec.shortCompl) {
            ServeRequest r;
            for (int t = 0; t < 4; ++t)
                r.promptTokens.push_back((200 + i * 7 + t) % 256);
            r.maxNewTokens = smoke ? 4 : 6;
            r.priority = Priority::Interactive;
            r.sampling.temperature = 1.0f;
            r.sampling.topK = 8;
            r.sampling.seed = 500 + uint64_t(i);
            add(std::move(r));
        }
    }
    // Pool sized to roughly half the batch's worst case: admission feels
    // real pressure (deferrals, reservations) without ever rejecting.
    const size_t worst =
        KVCache::blocksForTokens(config, cache, max_tokens);
    spec.poolBlocks = worst * size_t(spec.maxBatch) / 2 + worst;
    return spec;
}

struct TrafficPoint
{
    double tokensPerS = 0.0;
    int64_t overtakes = 0;
    int64_t deferred = 0;
    int64_t prefixHits = 0;
    LatencyStats interactive;
    LatencyStats batch;
    std::vector<std::vector<int>> tokens; ///< by spec request index
};

TrafficPoint
runTrafficOnce(SyntheticModel &model, const KernelContext &kc,
               const TrafficSpec &spec, bool reversed, int max_batch)
{
    ServeSessionOptions options;
    options.scheduler.maxBatch = max_batch;
    options.scheduler.vocabSize = 256;
    options.scheduler.decode.kernels = &kc;
    options.scheduler.decode.cache.blockTokens = 16;
    options.scheduler.kvPoolBlocks = spec.poolBlocks;
    options.scheduler.prefixCache = true;
    ServeSession session(model, options);

    std::vector<int> ids(spec.requests.size(), -1);
    const auto t0 = Clock::now();
    if (reversed) {
        for (size_t i = spec.requests.size(); i-- > 0;)
            ids[i] = session.submit(spec.requests[i]);
    } else {
        for (size_t i = 0; i < spec.requests.size(); ++i)
            ids[i] = session.submit(spec.requests[i]);
    }
    session.drain();
    const double s = std::chrono::duration<double>(Clock::now() - t0)
                         .count();

    TrafficPoint p;
    p.tokensPerS =
        double(session.scheduler().stats().decodedTokens) / s;
    p.overtakes = session.scheduler().stats().overtakes;
    p.deferred = session.scheduler().stats().deferred;
    p.prefixHits = session.scheduler().stats().prefixHits;
    p.interactive = session.latency(Priority::Interactive);
    p.batch = session.latency(Priority::Batch);
    p.tokens.resize(spec.requests.size());
    for (size_t i = 0; i < spec.requests.size(); ++i) {
        const ServeResult *r = session.result(ids[i]);
        TENDER_CHECK(r != nullptr &&
                     r->state == RequestState::Finished);
        p.tokens[i] = r->tokens;
    }
    return p;
}

/** The scenario's gated invariant: every request's sampled tokens are
 *  identical under reversed admission, a different batch cap, and a
 *  different worker count — the serving-layer extension of the runtime's
 *  scheduling-independence contract. */
bool
trafficOrderIndependent(SyntheticModel &model, const KernelContext &kc,
                        const TrafficSpec &spec, const TrafficPoint &base)
{
    const KernelContext alt(kc.backend(),
                            std::max(1, kc.workers() / 2) + 1);
    const TrafficPoint reversed =
        runTrafficOnce(model, kc, spec, true, spec.maxBatch);
    const TrafficPoint rebatched =
        runTrafficOnce(model, kc, spec, false,
                       std::max(1, spec.maxBatch - 1));
    const TrafficPoint reworked =
        runTrafficOnce(model, alt, spec, true, spec.maxBatch + 2);
    for (size_t i = 0; i < spec.requests.size(); ++i)
        if (base.tokens[i] != reversed.tokens[i] ||
            base.tokens[i] != rebatched.tokens[i] ||
            base.tokens[i] != reworked.tokens[i])
            return false;
    return true;
}

// ---- Preemption under pool pressure -------------------------------------

/** Batch-class requests with long budgets fill a bounded pool; a burst of
 *  sampled Interactive requests arrives a few steps later. With
 *  maxPreemptions off they wait for a Batch request to run its budget
 *  down; with it on, the scheduler freezes a victim (parking its KV in
 *  the prefix cache) to seat them now. The off arm doubles as the
 *  uninterrupted reference for the preempt_resume_bitexact gate. */
struct PressureSpec
{
    int maxBatch = 4;
    size_t poolBlocks = 0;
    int warmSteps = 4;
    std::vector<ServeRequest> batchReqs;    ///< submitted first
    std::vector<ServeRequest> interactive;  ///< submitted after warmSteps
};

PressureSpec
pressureSpec(const ModelConfig &config, const KVCacheConfig &cache,
             bool smoke)
{
    PressureSpec spec;
    const int n_batch = smoke ? 2 : 3;
    const int n_inter = smoke ? 3 : 4;
    // One slot stays free: admission is blocked by the pool alone, so the
    // scenario isolates preemption from simple slot turnover.
    spec.maxBatch = n_batch + 1;
    // By the freeze the victims hold 16-17 cache rows: one complete
    // 16-row block beyond what their own prefill published (the 12-token
    // prompt rounds down to zero complete blocks), so parking has real
    // pages to keep and the resume readopts them.
    spec.warmSteps = smoke ? 5 : 6;
    const int b_prompt = 12;
    const int b_budget = smoke ? 20 : 40;
    for (int i = 0; i < n_batch; ++i) {
        ServeRequest r;
        for (int t = 0; t < b_prompt; ++t)
            r.promptTokens.push_back((i * 29 + t * 5) % 256);
        r.maxNewTokens = b_budget;
        r.priority = Priority::Batch; // greedy
        spec.batchReqs.push_back(r);
    }
    const int i_prompt = 5;
    const int i_budget = smoke ? 4 : 6;
    for (int i = 0; i < n_inter; ++i) {
        ServeRequest r;
        for (int t = 0; t < i_prompt; ++t)
            r.promptTokens.push_back((150 + i * 17 + t) % 256);
        r.maxNewTokens = i_budget;
        r.priority = Priority::Interactive;
        r.sampling.temperature = 0.9f;
        r.sampling.topK = 16;
        r.sampling.topP = 0.95f;
        r.sampling.seed = 900 + uint64_t(i);
        spec.interactive.push_back(r);
    }
    const size_t worst_b = KVCache::blocksForTokens(
        config, cache, b_prompt + b_budget - 1);
    const size_t worst_i = KVCache::blocksForTokens(
        config, cache, i_prompt + i_budget - 1);
    // Every Batch reservation fits, and one interactive reservation is
    // exactly one block short — blocks must come back before it seats.
    spec.poolBlocks = worst_b * size_t(n_batch) + worst_i - 1;
    return spec;
}

struct PressurePoint
{
    double tokensPerS = 0.0;
    int64_t preemptions = 0;
    int64_t resumes = 0;
    int64_t deferred = 0;
    int64_t reusedRows = 0;
    bool accountingOk = true;
    LatencyStats interactive;
    LatencyStats batch;
    std::vector<std::vector<int>> tokens; ///< by spec submit order
};

PressurePoint
runPressure(SyntheticModel &model, const KernelContext &kc,
            const PressureSpec &spec, KVCacheMode mode, int max_preemptions)
{
    ServeSessionOptions options;
    options.scheduler.maxBatch = spec.maxBatch;
    options.scheduler.vocabSize = 256;
    options.scheduler.decode.kernels = &kc;
    options.scheduler.decode.cache.mode = mode;
    options.scheduler.decode.cache.blockTokens = 16;
    options.scheduler.decode.cache.tender.rowChunk = 16;
    options.scheduler.kvPoolBlocks = spec.poolBlocks;
    options.scheduler.prefixCache = true;
    options.scheduler.maxPreemptions = max_preemptions;
    ServeSession session(model, options);

    std::vector<int> ids;
    const auto t0 = Clock::now();
    for (const ServeRequest &r : spec.batchReqs)
        ids.push_back(session.submit(r));
    for (int s = 0; s < spec.warmSteps; ++s)
        session.step();
    for (const ServeRequest &r : spec.interactive)
        ids.push_back(session.submit(r));
    session.drain();
    const double s = std::chrono::duration<double>(Clock::now() - t0)
                         .count();

    PressurePoint p;
    const SchedulerStats &st = session.scheduler().stats();
    p.tokensPerS = double(st.decodedTokens) / s;
    p.preemptions = st.preemptions;
    p.resumes = st.resumes;
    p.deferred = st.deferred;
    p.reusedRows = st.resumedRowsReused;
    p.interactive = session.latency(Priority::Interactive);
    p.batch = session.latency(Priority::Batch);
    for (const int id : ids) {
        const ServeResult *r = session.result(id);
        TENDER_CHECK(r != nullptr && r->state == RequestState::Finished);
        p.tokens.push_back(r->tokens);
    }
    // Park accounting must settle to zero and every block must come home
    // once the prefix cache lets go of the parked pages.
    BlockPoolStats ps = session.scheduler().poolStats();
    p.accountingOk = session.scheduler().pool().refcountsConsistent() &&
        ps.parkedBlocks == 0 && ps.parks == ps.unparks;
    session.scheduler().prefixCache()->clear();
    ps = session.scheduler().poolStats();
    p.accountingOk = p.accountingOk && ps.allocatedBlocks == 0 &&
        ps.reservedBlocks == 0 && ps.sharedBlocks == 0 &&
        session.scheduler().pool().refcountsConsistent();
    return p;
}

bool
sameTokenVectors(const std::vector<std::vector<int>> &a,
                 const std::vector<std::vector<int>> &b)
{
    return a == b;
}

// ---- Fault churn: containment under a seeded fault plan -----------------

/** One decode arm of the fault-churn scenario. */
struct FaultArm
{
    const char *name; ///< JSON key: fp32 | tender | tender_fused
    KVCacheMode mode;
    bool fused;
    bool prefixCache; ///< off in quantized arms (scheme-free, but the
                      ///< quantized prefix grain is exercised elsewhere)
};

/** One session run of the fault-churn workload (faulted or reference). */
struct FaultRun
{
    std::vector<ServeResult> results; ///< spec order, then doomed extras
    double seconds = 0.0;
    bool accountingOk = true;
};

/** Aggregated fault-churn measurements of one arm. */
struct FaultChurnPoint
{
    double survivorTokensPerS = 0.0;
    int finished = 0;
    int failed = 0;
    int shedQueueFull = 0;
    int shedDeadline = 0;
    int64_t allocFaults = 0;    ///< injector triggers fired at "alloc"
    int64_t callbackFaults = 0; ///< fired at "callback"
    bool survivorsBitexact = true;
    bool accountingOk = true;
};

FaultRun
runFaultOnce(SyntheticModel &model, const KernelContext &kc,
             const TrafficSpec &spec, const FaultArm &arm, bool shed)
{
    ServeSessionOptions options;
    options.scheduler.maxBatch = spec.maxBatch;
    options.scheduler.vocabSize = 256;
    options.scheduler.decode.kernels = &kc;
    options.scheduler.decode.cache.mode = arm.mode;
    options.scheduler.decode.cache.blockTokens = 16;
    options.scheduler.decode.cache.tender.rowChunk = 16;
    options.scheduler.decode.fusedQuantKv = arm.fused;
    options.scheduler.kvPoolBlocks = spec.poolBlocks;
    options.scheduler.prefixCache = arm.prefixCache;
    // Queue bound sized so exactly the last two workload submissions are
    // shed at the front door (the two doomed requests below occupy two
    // queue slots before the workload arrives, and nothing is admitted
    // until the first step).
    if (shed)
        options.scheduler.maxQueueDepth = int(spec.requests.size());
    ServeSession session(model, options);

    std::vector<int> doomed_ids;
    const auto t0 = Clock::now();
    if (shed) {
        // Two doomed stragglers submitted first: their 1 us deadline
        // expires before the first step's sweep runs, so they are shed
        // as DeadlineExceeded deterministically.
        for (int i = 0; i < 2; ++i) {
            ServeRequest r = spec.requests[size_t(i)];
            r.deadlineUs = 1;
            doomed_ids.push_back(session.submit(r));
        }
    }
    std::vector<int> ids;
    for (const ServeRequest &req : spec.requests) {
        ServeRequest r = req;
        r.onEvent = [](const StreamEvent &) {}; // exposes the callback site
        ids.push_back(session.submit(r));
    }
    session.drain();
    FaultRun run;
    run.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    for (const int id : ids)
        run.results.push_back(*session.result(id));
    for (const int id : doomed_ids)
        run.results.push_back(*session.result(id));

    // Leak audit: whatever faulted, every block and reservation must be
    // home once the session drains and the prefix cache lets go.
    BlockPoolStats ps = session.poolStats();
    run.accountingOk = session.scheduler().pool().refcountsConsistent() &&
                       ps.parkedBlocks == 0;
    if (session.scheduler().prefixCache())
        session.scheduler().prefixCache()->clear();
    ps = session.poolStats();
    run.accountingOk = run.accountingOk && ps.allocatedBlocks == 0 &&
                       ps.reservedBlocks == 0 && ps.sharedBlocks == 0;
    return run;
}

FaultChurnPoint
runFaultChurn(SyntheticModel &model, const KernelContext &kc,
              const TrafficSpec &spec, const FaultArm &arm,
              const std::string &plan)
{
    // Fault-free reference: every request must finish; its tokens are the
    // survivors' bit-exactness baseline.
    FaultInjector::instance().disarm();
    const FaultRun base = runFaultOnce(model, kc, spec, arm, false);

    FaultInjector::instance().arm(plan);
    const FaultRun chaos = runFaultOnce(model, kc, spec, arm, true);
    FaultChurnPoint p;
    p.allocFaults = FaultInjector::instance().fired(FaultSite::AllocFail);
    p.callbackFaults =
        FaultInjector::instance().fired(FaultSite::CallbackThrow);
    FaultInjector::instance().disarm();

    p.accountingOk = base.accountingOk && chaos.accountingOk;
    for (const ServeResult &r : base.results)
        if (r.state != RequestState::Finished)
            p.survivorsBitexact = false;
    int64_t survivor_tokens = 0;
    for (size_t i = 0; i < chaos.results.size(); ++i) {
        const ServeResult &r = chaos.results[i];
        if (r.state == RequestState::Finished) {
            ++p.finished;
            survivor_tokens += int64_t(r.tokens.size());
            // The containment contract: a request the plan did not fail
            // generates exactly the fault-free run's tokens.
            if (i < base.results.size() &&
                r.tokens != base.results[i].tokens)
                p.survivorsBitexact = false;
        } else {
            ++p.failed;
            if (r.failure == FailureReason::QueueOverflow)
                ++p.shedQueueFull;
            else if (r.failure == FailureReason::DeadlineExceeded)
                ++p.shedDeadline;
        }
    }
    p.survivorTokensPerS = double(survivor_tokens) / chaos.seconds;
    return p;
}

// ---- Recorded correctness invariants ------------------------------------

struct Correctness
{
    bool fp32BitExact = false;
    double tenderNmse = 0.0;
    double tenderNmseBound = 2e-3;
    /** Fused integer-domain attention vs the dequantize-on-read oracle,
     *  same quantized cache — isolates the fused path's own error (query
     *  quantization on frozen chunks). */
    double fusedNmse = 0.0;
    double fusedNmseBound = 2e-3;
    /** MQ-panel decode == per-head decode, bit for bit, in every KV mode
     *  on both model shapes (the panels' row-locality contract). */
    bool mqPanelBitExact = false;
};

/** Teacher-forced decode of `input` under `base` on `kc` (prefill 8
 *  rows, then row at a time). */
Matrix
teacherForcedDecode(SyntheticModel &model, const Matrix &input,
                    const DecodeOptions &base, const KernelContext &kc)
{
    DecodeOptions options = base;
    options.kernels = &kc;
    DecodeEngine engine(model, options);
    Matrix out(input.rows(), input.cols());
    const Matrix pre = engine.prefill(input.rowSlice(0, 8));
    for (int r = 0; r < 8; ++r)
        for (int col = 0; col < input.cols(); ++col)
            out(r, col) = pre(r, col);
    for (int r = 8; r < input.rows(); ++r) {
        const Matrix h = engine.step(input.rowSlice(r, r + 1));
        for (int col = 0; col < input.cols(); ++col)
            out(r, col) = h(0, col);
    }
    return out;
}

/** MQ-panel decode vs per-head decode over every KV mode for one model:
 *  bit equality, the panels' row-locality contract made machine-checked. */
bool
mqPanelBitExactFor(SyntheticModel &model, const KernelContext &kc)
{
    const Matrix input = model.sampleInput(20, 7);
    DecodeOptions fp32;
    DecodeOptions quant;
    quant.cache.mode = KVCacheMode::TenderQuantized;
    quant.cache.tender.rowChunk = 8;
    DecodeOptions fused = quant;
    fused.fusedQuantKv = true;
    for (const DecodeOptions &base : {fp32, quant, fused}) {
        DecodeOptions mq_on = base, mq_off = base;
        mq_on.mqAttentionPanels = true;
        mq_off.mqAttentionPanels = false;
        if (maxAbsDiff(teacherForcedDecode(model, input, mq_on, kc),
                       teacherForcedDecode(model, input, mq_off, kc)) !=
            0.f)
            return false;
    }
    return true;
}

Correctness
checkCorrectness(SyntheticModel &model, SyntheticModel &gqa_model,
                 const KernelContext &kc)
{
    Correctness c;
    const Matrix input = model.sampleInput(24, 3);
    // The reference forward runs on the same context as the decode under
    // test: the packed arm is NMSE-gated (not bit-parity) against the
    // golden kernels, so comparing like with like is what makes the
    // fp32_decode_bit_exact field a pure decode-vs-prefill invariant.
    const Matrix full = modelForward(model, input, &kc);

    auto decode = [&](const DecodeOptions &base) {
        return teacherForcedDecode(model, input, base, kc);
    };

    const Matrix fp32 = decode(DecodeOptions{});
    c.fp32BitExact = maxAbsDiff(full, fp32) == 0.f;

    DecodeOptions quant;
    quant.cache.mode = KVCacheMode::TenderQuantized;
    quant.cache.tender.rowChunk = 16;
    const Matrix dequant = decode(quant);
    c.tenderNmse = nmse(fp32, dequant);

    DecodeOptions fused = quant;
    fused.fusedQuantKv = true;
    c.fusedNmse = nmse(dequant, decode(fused));

    c.mqPanelBitExact =
        mqPanelBitExactFor(model, kc) && mqPanelBitExactFor(gqa_model, kc);
    return c;
}

// ---- Speculative decoding scenario --------------------------------------

/** One (drafter, k) point of the spec_decode scenario. */
struct SpecPoint
{
    double tokensPerS = 0.0;
    double acceptance = 0.0; ///< accepted / drafted draft tokens
    int64_t drafted = 0;
    int64_t accepted = 0;
    int64_t steps = 0;
    bool bitexact = true; ///< tokens == the plain run's, per request
};

/** Repetitive-suffix workload: prompts whose greedy continuation the
 *  prompt-lookup drafter can latch onto (each request a different short
 *  cycle), the regime speculation exists to accelerate — agentic and
 *  template-heavy decode where the continuation echoes the context. */
std::vector<GenRequest>
specWorkload(int batch, int prompt_len, int new_tokens,
             DrafterKind drafter, int max_draft)
{
    std::vector<GenRequest> requests;
    for (int id = 0; id < batch; ++id) {
        GenRequest r;
        r.id = id;
        const int period = 2 + id % 3;
        for (int t = 0; t < prompt_len; ++t)
            r.promptTokens.push_back(3 + id * 5 + t % period);
        r.maxNewTokens = new_tokens;
        r.speculation.drafter = drafter;
        r.speculation.maxDraft = max_draft;
        requests.push_back(r);
    }
    return requests;
}

SpecPoint
runSpecOnce(SyntheticModel &model, const KernelContext &kc,
            KVCacheMode mode, bool fused, DrafterKind drafter,
            int max_draft, int batch, int prompt_len, int new_tokens,
            const std::vector<GenResult> *plain,
            std::vector<GenResult> *out_results = nullptr)
{
    SchedulerOptions options;
    options.maxBatch = batch;
    options.vocabSize = 256;
    options.decode.kernels = &kc;
    options.decode.cache.mode = mode;
    options.decode.cache.tender.rowChunk = 16;
    options.decode.fusedQuantKv = fused;
    BatchScheduler scheduler(model, options);
    for (const GenRequest &r :
         specWorkload(batch, prompt_len, new_tokens, drafter, max_draft))
        scheduler.submit(r);
    const auto t0 = Clock::now();
    const std::vector<GenResult> results = scheduler.drain();
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    SpecPoint p;
    p.tokensPerS = double(scheduler.stats().decodedTokens) / s;
    p.drafted = scheduler.stats().draftedTokens;
    p.accepted = scheduler.stats().acceptedDraftTokens;
    p.steps = scheduler.stats().steps;
    p.acceptance =
        p.drafted > 0 ? double(p.accepted) / double(p.drafted) : 0.0;
    if (plain) {
        TENDER_CHECK(plain->size() == results.size());
        for (size_t i = 0; i < results.size(); ++i)
            p.bitexact = p.bitexact &&
                         results[i].tokens == (*plain)[i].tokens;
    }
    if (out_results)
        *out_results = results;
    return p;
}

/** Best-of-reps wrapper keeping the bit-identity AND across reps.
 *  `out_results` (optional) receives the first rep's tokens — generation
 *  is deterministic, so every rep produces the same ones. */
SpecPoint
runSpec(SyntheticModel &model, const KernelContext &kc, KVCacheMode mode,
        bool fused, DrafterKind drafter, int max_draft, int batch,
        int prompt_len, int new_tokens, int reps,
        const std::vector<GenResult> *plain,
        std::vector<GenResult> *out_results = nullptr)
{
    SpecPoint best =
        runSpecOnce(model, kc, mode, fused, drafter, max_draft, batch,
                    prompt_len, new_tokens, plain, out_results);
    for (int r = 1; r < reps; ++r) {
        SpecPoint p =
            runSpecOnce(model, kc, mode, fused, drafter, max_draft, batch,
                        prompt_len, new_tokens, plain);
        p.bitexact = p.bitexact && best.bitexact;
        if (p.tokensPerS > best.tokensPerS)
            best = p;
        else
            best.bitexact = best.bitexact && p.bitexact;
    }
    return best;
}

// ---- JSON emission ------------------------------------------------------

void
emitMode(FILE *f, const char *key, const std::vector<BatchPoint> &points,
         bool trailing_comma)
{
    std::fprintf(f, "  \"%s\": {\n", key);
    for (size_t i = 0; i < points.size(); ++i) {
        const BatchPoint &p = points[i];
        std::fprintf(f,
                     "    \"batch_%d\": {\"tokens_per_s\": %.2f, "
                     "\"steps_per_s\": %.2f, \"steps\": %lld, "
                     "\"cache_bytes_per_request\": %zu}%s\n",
                     p.batch, p.tokensPerS, p.stepsPerS,
                     (long long)p.steps, p.cacheBytesPerRequest,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  }%s\n", trailing_comma ? "," : "");
}

void
emitChurnArm(FILE *f, const char *key, const ChurnPoint &p,
             bool trailing_comma)
{
    std::fprintf(f,
                 "    \"%s\": {\"tokens_per_s\": %.2f, "
                 "\"peak_kv_bytes\": %zu, \"peak_committed_bytes\": %zu, "
                 "\"block_tokens\": %zu, \"created_blocks\": %zu, "
                 "\"allocations\": %lld, \"reuses\": %lld}%s\n",
                 key, p.tokensPerS, p.peakKvBytes, p.peakCommittedBytes,
                 p.blockTokens, p.createdBlocks, (long long)p.allocations,
                 (long long)p.reuses, trailing_comma ? "," : "");
}

void
emitPrefixMode(FILE *f, const char *key, const PrefixPoint &shared,
               const PrefixPoint &cold)
{
    std::fprintf(f, "    \"%s\": {\n", key);
    std::fprintf(f,
                 "      \"shared\": {\"tokens_per_s\": %.2f, "
                 "\"peak_kv_bytes\": %zu, \"prefill_rows_skipped\": %lld, "
                 "\"prefix_hits\": %lld, \"cow_copies\": %lld, "
                 "\"shares\": %lld},\n",
                 shared.tokensPerS, shared.peakKvBytes,
                 (long long)shared.skippedRows, (long long)shared.hits,
                 (long long)shared.cowCopies, (long long)shared.shares);
    std::fprintf(f,
                 "      \"cold\": {\"tokens_per_s\": %.2f, "
                 "\"peak_kv_bytes\": %zu},\n",
                 cold.tokensPerS, cold.peakKvBytes);
    std::fprintf(f, "      \"peak_kv_bytes_ratio\": %.3f,\n",
                 double(cold.peakKvBytes) / double(shared.peakKvBytes));
    std::fprintf(f, "      \"tokens_per_s_ratio\": %.3f\n",
                 shared.tokensPerS / cold.tokensPerS);
    std::fprintf(f, "    },\n");
}

void
emitTrafficClass(FILE *f, const char *key, const LatencyStats &l)
{
    std::fprintf(f,
                 "    \"%s\": {\"requests\": %d, \"tokens\": %lld, "
                 "\"ttft_p50_us\": %.1f, \"ttft_p95_us\": %.1f, "
                 "\"itl_p50_us\": %.1f, \"itl_p95_us\": %.1f},\n",
                 key, l.requests, (long long)l.tokens, l.ttftP50Us,
                 l.ttftP95Us, l.itlP50Us, l.itlP95Us);
}

void
emitPressureMode(FILE *f, const char *key, const PressurePoint &on,
                 const PressurePoint &off, bool trailing_comma)
{
    std::fprintf(f, "    \"%s\": {\n", key);
    for (const auto *arm : {&on, &off}) {
        const bool is_on = arm == &on;
        std::fprintf(f, "      \"%s\": {\n", is_on ? "on" : "off");
        std::fprintf(f,
                     "        \"tokens_per_s\": %.2f, "
                     "\"preemptions\": %lld, \"resumes\": %lld, "
                     "\"resumed_rows_reused\": %lld, \"deferred\": %lld,\n",
                     arm->tokensPerS, (long long)arm->preemptions,
                     (long long)arm->resumes, (long long)arm->reusedRows,
                     (long long)arm->deferred);
        for (const bool batch_class : {false, true}) {
            const LatencyStats &l =
                batch_class ? arm->batch : arm->interactive;
            std::fprintf(f,
                         "        \"%s\": {\"requests\": %d, "
                         "\"tokens\": %lld, \"ttft_p50_us\": %.1f, "
                         "\"ttft_p95_us\": %.1f, \"itl_p50_us\": %.1f, "
                         "\"itl_p95_us\": %.1f, \"preemptions\": %d}%s\n",
                         batch_class ? "batch" : "interactive", l.requests,
                         (long long)l.tokens, l.ttftP50Us, l.ttftP95Us,
                         l.itlP50Us, l.itlP95Us, l.preemptions,
                         batch_class ? "" : ",");
        }
        std::fprintf(f, "      },\n");
    }
    std::fprintf(f, "      \"interactive_ttft_p95_ratio\": %.3f\n",
                 off.interactive.ttftP95Us / on.interactive.ttftP95Us);
    std::fprintf(f, "    }%s\n", trailing_comma ? "," : "");
}

void
emitFaultArm(FILE *f, const char *key, const FaultChurnPoint &p)
{
    std::fprintf(f,
                 "    \"%s\": {\"survivor_tokens_per_s\": %.2f, "
                 "\"finished\": %d, \"failed\": %d, "
                 "\"shed_queue_full\": %d, \"shed_deadline\": %d, "
                 "\"alloc_faults\": %lld, \"callback_faults\": %lld},\n",
                 key, p.survivorTokensPerS, p.finished, p.failed,
                 p.shedQueueFull, p.shedDeadline,
                 (long long)p.allocFaults, (long long)p.callbackFaults);
}

void
emitChurn(FILE *f, const char *key, const ChurnPoint &paged,
          const ChurnPoint &contiguous, bool trailing_comma)
{
    std::fprintf(f, "  \"%s\": {\n", key);
    emitChurnArm(f, "paged", paged, true);
    emitChurnArm(f, "contiguous", contiguous, true);
    std::fprintf(f, "    \"peak_kv_bytes_ratio\": %.3f,\n",
                 double(contiguous.peakKvBytes) /
                     double(paged.peakKvBytes));
    std::fprintf(f, "    \"tokens_per_s_ratio\": %.3f\n",
                 paged.tokensPerS / contiguous.tokensPerS);
    std::fprintf(f, "  }%s\n", trailing_comma ? "," : "");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            positional.push_back(argv[i]);
    }
    const int prompt_len =
        positional.size() > 0 ? std::atoi(positional[0]) : (smoke ? 8 : 16);
    const int new_tokens =
        positional.size() > 1 ? std::atoi(positional[1]) : (smoke ? 6 : 32);
    const int workers =
        positional.size() > 2 ? std::atoi(positional[2]) : (smoke ? 2 : 8);
    const char *out_path =
        positional.size() > 3 ? positional[3] : "BENCH_decode.json";

    const ModelConfig config = replicaOf(modelByName("OPT-6.7B"), 32);
    SyntheticModel model(config, 5);
    // GQA shape for the multi-query panel scenario: 4 query heads share
    // each kv head, so the panel batching has real work to amortize.
    const ModelConfig gqa_config = replicaOf(modelByName("Llama-2-70B"), 64);
    SyntheticModel gqa_model(gqa_config, 7);
    KernelContext kc(Backend::Packed, workers);

    std::printf("== BENCH decode%s: %s (d=%d, layers=%d), prompt %d, "
                "%d tokens/request, %d workers ==\n",
                smoke ? " (smoke)" : "", config.name.c_str(), config.dModel,
                config.nLayers, prompt_len, new_tokens, workers);
    std::printf("kernel arm: %s (simd: %s)\n",
                backendName(kc.backend()).c_str(),
                simdDescription().c_str());

    // Machine-speed reference for check_bench.py's baseline comparison.
    const double calibration = bench::calibrationScoreMflops();
    std::printf("calibration (%s): %.1f MFLOP/s\n",
                bench::kCalibrationWorkload, calibration);

    // Warm the lazily generated weights out of the measurement.
    runBatch(model, kc, 1, prompt_len, 2, KVCacheMode::Fp32);

    // Smoke runs feed the CI baseline comparison; best-of-3 keeps the
    // recorded tokens/s stable enough to compare across runs.
    const int reps = smoke ? 3 : 2;
    const std::vector<int> batches =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16};
    std::vector<BatchPoint> fp32, quant, fusedq;
    for (int b : batches) {
        fp32.push_back(runBatch(model, kc, b, prompt_len, new_tokens,
                                KVCacheMode::Fp32, /*fused=*/false, reps));
        std::printf("fp32-KV   batch %2d: %8.1f tokens/s (%lld steps)\n",
                    b, fp32.back().tokensPerS,
                    (long long)fp32.back().steps);
        quant.push_back(runBatch(model, kc, b, prompt_len, new_tokens,
                                 KVCacheMode::TenderQuantized,
                                 /*fused=*/false, reps));
        std::printf("tender-KV batch %2d: %8.1f tokens/s (%lld steps)\n",
                    b, quant.back().tokensPerS,
                    (long long)quant.back().steps);
        fusedq.push_back(runBatch(model, kc, b, prompt_len, new_tokens,
                                  KVCacheMode::TenderQuantized,
                                  /*fused=*/true, reps));
        std::printf("fused-KV  batch %2d: %8.1f tokens/s (%lld steps)\n",
                    b, fusedq.back().tokensPerS,
                    (long long)fusedq.back().steps);
    }
    // Fused vs dequantize-oracle tokens/s at the largest batch — the
    // number the fused path exists to move.
    const double fused_ratio =
        fusedq.back().tokensPerS / quant.back().tokensPerS;
    std::printf("fused/dequantize tokens/s ratio at batch %d: %.2fx\n",
                batches.back(), fused_ratio);
    std::printf("continuous batching speedup (fp32-KV) vs batch 1:");
    for (size_t i = 1; i < fp32.size(); ++i)
        std::printf(" batch %d %.2fx%s", fp32[i].batch,
                    fp32[i].tokensPerS / fp32[0].tokensPerS,
                    i + 1 < fp32.size() ? "," : "\n");

    // GQA multi-query panels on vs off, both KV modes, at the largest
    // batch — the panel amortization the MQ restructure exists to buy.
    const int mq_batch = batches.back();
    const BatchPoint mq_fp32_on =
        runBatch(gqa_model, kc, mq_batch, prompt_len, new_tokens,
                 KVCacheMode::Fp32, /*fused=*/false, reps, /*mq=*/true);
    const BatchPoint mq_fp32_off =
        runBatch(gqa_model, kc, mq_batch, prompt_len, new_tokens,
                 KVCacheMode::Fp32, /*fused=*/false, reps, /*mq=*/false);
    const BatchPoint mq_fused_on =
        runBatch(gqa_model, kc, mq_batch, prompt_len, new_tokens,
                 KVCacheMode::TenderQuantized, /*fused=*/true, reps,
                 /*mq=*/true);
    const BatchPoint mq_fused_off =
        runBatch(gqa_model, kc, mq_batch, prompt_len, new_tokens,
                 KVCacheMode::TenderQuantized, /*fused=*/true, reps,
                 /*mq=*/false);
    std::printf("mq panels (GQA %s, %d q-heads/kv-head, batch %d): fp32-KV "
                "%.1f vs %.1f tok/s (%.2fx), fused-KV %.1f vs %.1f tok/s "
                "(%.2fx)\n",
                gqa_config.name.c_str(),
                gqa_config.nHeads / gqa_config.kvHeads, mq_batch,
                mq_fp32_on.tokensPerS, mq_fp32_off.tokensPerS,
                mq_fp32_on.tokensPerS / mq_fp32_off.tokensPerS,
                mq_fused_on.tokensPerS, mq_fused_off.tokensPerS,
                mq_fused_on.tokensPerS / mq_fused_off.tokensPerS);

    const ChurnSpec spec = churnSpec(smoke);
    const ChurnPoint churn_fp32_paged =
        runChurn(model, kc, spec, KVCacheMode::Fp32, true);
    const ChurnPoint churn_fp32_contig =
        runChurn(model, kc, spec, KVCacheMode::Fp32, false);
    const ChurnPoint churn_tender_paged =
        runChurn(model, kc, spec, KVCacheMode::TenderQuantized, true);
    const ChurnPoint churn_tender_contig =
        runChurn(model, kc, spec, KVCacheMode::TenderQuantized, false);
    std::printf("churn (%zu mixed requests, maxBatch %d): fp32 paged "
                "%.1f tok/s peak %zu B vs contiguous %.1f tok/s peak %zu B "
                "(%.2fx smaller)\n",
                spec.requests.size(), spec.maxBatch,
                churn_fp32_paged.tokensPerS, churn_fp32_paged.peakKvBytes,
                churn_fp32_contig.tokensPerS, churn_fp32_contig.peakKvBytes,
                double(churn_fp32_contig.peakKvBytes) /
                    double(churn_fp32_paged.peakKvBytes));
    std::printf("churn tender-KV: paged peak %zu B vs contiguous %zu B "
                "(%.2fx smaller)\n",
                churn_tender_paged.peakKvBytes,
                churn_tender_contig.peakKvBytes,
                double(churn_tender_contig.peakKvBytes) /
                    double(churn_tender_paged.peakKvBytes));

    // Shared-system-prompt mixed batch: prefix caching on vs off, both KV
    // modes. Sharing must preserve the generated tokens bit for bit while
    // skipping prefill work and shrinking peak KV memory.
    const PrefixSpec pspec = prefixSpec(smoke);
    const PrefixPoint prefix_fp32_shared =
        runPrefix(model, kc, pspec, KVCacheMode::Fp32, true, reps);
    const PrefixPoint prefix_fp32_cold =
        runPrefix(model, kc, pspec, KVCacheMode::Fp32, false, reps);
    const PrefixPoint prefix_tender_shared = runPrefix(
        model, kc, pspec, KVCacheMode::TenderQuantized, true, reps);
    const PrefixPoint prefix_tender_cold = runPrefix(
        model, kc, pspec, KVCacheMode::TenderQuantized, false, reps);
    const bool prefix_bitexact =
        sameTokens(prefix_fp32_shared.results, prefix_fp32_cold.results) &&
        sameTokens(prefix_tender_shared.results,
                   prefix_tender_cold.results) &&
        sharedPagesBitIdentical(config);
    const bool refcounts_ok = prefix_fp32_shared.refcountsOk &&
        prefix_fp32_cold.refcountsOk && prefix_tender_shared.refcountsOk &&
        prefix_tender_cold.refcountsOk;
    std::printf("shared prefix (%d-token system prompt, %zu requests): "
                "fp32 %.1f tok/s peak %zu B (cold %.1f tok/s peak %zu B, "
                "%.2fx), %lld prefill rows skipped, %lld hits, %lld COW "
                "copies\n",
                pspec.sysLen, pspec.requests.size(),
                prefix_fp32_shared.tokensPerS,
                prefix_fp32_shared.peakKvBytes,
                prefix_fp32_cold.tokensPerS, prefix_fp32_cold.peakKvBytes,
                double(prefix_fp32_cold.peakKvBytes) /
                    double(prefix_fp32_shared.peakKvBytes),
                (long long)prefix_fp32_shared.skippedRows,
                (long long)prefix_fp32_shared.hits,
                (long long)prefix_fp32_shared.cowCopies);
    std::printf("shared prefix tender-KV: %.1f tok/s peak %zu B (cold "
                "%.1f tok/s peak %zu B, %.2fx), %lld rows skipped, "
                "%lld COW copies; reuse %s, refcounts %s\n",
                prefix_tender_shared.tokensPerS,
                prefix_tender_shared.peakKvBytes,
                prefix_tender_cold.tokensPerS,
                prefix_tender_cold.peakKvBytes,
                double(prefix_tender_cold.peakKvBytes) /
                    double(prefix_tender_shared.peakKvBytes),
                (long long)prefix_tender_shared.skippedRows,
                (long long)prefix_tender_shared.cowCopies,
                prefix_bitexact ? "bit-exact" : "DIVERGED",
                refcounts_ok ? "consistent" : "INCONSISTENT");

    // Mixed serving traffic through the new front end: chat + long-doc +
    // short completions, prefix cache on, bounded pool, priorities live.
    KVCacheConfig traffic_cache;
    traffic_cache.blockTokens = 16;
    const TrafficSpec tspec = trafficSpec(config, traffic_cache, smoke);
    const TrafficPoint traffic =
        runTrafficOnce(model, kc, tspec, false, tspec.maxBatch);
    const bool order_independent =
        trafficOrderIndependent(model, kc, tspec, traffic);
    std::printf("mixed traffic (%zu requests: %d chat, %d long-doc, %d "
                "short; maxBatch %d, pool %zu blocks): %.1f tok/s, "
                "%lld prefix hits, %lld deferrals, %lld overtakes\n",
                tspec.requests.size(), tspec.chat, tspec.longDoc,
                tspec.shortCompl, tspec.maxBatch, tspec.poolBlocks,
                traffic.tokensPerS, (long long)traffic.prefixHits,
                (long long)traffic.deferred, (long long)traffic.overtakes);
    std::printf("  interactive: TTFT p50 %.0f us p95 %.0f us, ITL p50 "
                "%.0f us p95 %.0f us (%d requests)\n",
                traffic.interactive.ttftP50Us, traffic.interactive.ttftP95Us,
                traffic.interactive.itlP50Us, traffic.interactive.itlP95Us,
                traffic.interactive.requests);
    std::printf("  batch:       TTFT p50 %.0f us p95 %.0f us, ITL p50 "
                "%.0f us p95 %.0f us (%d requests)\n",
                traffic.batch.ttftP50Us, traffic.batch.ttftP95Us,
                traffic.batch.itlP50Us, traffic.batch.itlP95Us,
                traffic.batch.requests);
    std::printf("  sampled tokens %s of admission order, batch size, and "
                "worker count\n",
                order_independent ? "independent" : "DEPEND ON");

    // Preemption under pool pressure: the same workload with mid-decode
    // preemption on vs off, both KV modes. The off arm runs every request
    // uninterrupted, so token equality across arms is exactly the
    // freeze/park/resume bit-exactness contract.
    const PressureSpec ppspec = pressureSpec(config, traffic_cache, smoke);
    const PressurePoint press_fp32_on =
        runPressure(model, kc, ppspec, KVCacheMode::Fp32, 2);
    const PressurePoint press_fp32_off =
        runPressure(model, kc, ppspec, KVCacheMode::Fp32, 0);
    const PressurePoint press_tender_on =
        runPressure(model, kc, ppspec, KVCacheMode::TenderQuantized, 2);
    const PressurePoint press_tender_off =
        runPressure(model, kc, ppspec, KVCacheMode::TenderQuantized, 0);
    const bool preempt_bitexact =
        sameTokenVectors(press_fp32_on.tokens, press_fp32_off.tokens) &&
        sameTokenVectors(press_tender_on.tokens, press_tender_off.tokens) &&
        press_fp32_on.preemptions > 0 && press_tender_on.preemptions > 0 &&
        press_fp32_off.preemptions == 0 && press_tender_off.preemptions == 0;
    const bool preempt_accounting_ok = press_fp32_on.accountingOk &&
        press_fp32_off.accountingOk && press_tender_on.accountingOk &&
        press_tender_off.accountingOk;
    std::printf("preemption pressure (%zu batch + %zu interactive, pool "
                "%zu blocks): fp32 on %lld preemptions/%lld resumes, "
                "interactive TTFT p95 %.0f us vs %.0f us off (%.2fx); "
                "tokens %s, accounting %s\n",
                ppspec.batchReqs.size(), ppspec.interactive.size(),
                ppspec.poolBlocks, (long long)press_fp32_on.preemptions,
                (long long)press_fp32_on.resumes,
                press_fp32_on.interactive.ttftP95Us,
                press_fp32_off.interactive.ttftP95Us,
                press_fp32_off.interactive.ttftP95Us /
                    press_fp32_on.interactive.ttftP95Us,
                preempt_bitexact ? "bit-exact across arms" : "DIVERGED",
                preempt_accounting_ok ? "settled" : "LEAKED");
    std::printf("  tender-KV: on %lld preemptions/%lld resumes "
                "(%lld rows readopted), interactive TTFT p95 %.0f us vs "
                "%.0f us off (%.2fx)\n",
                (long long)press_tender_on.preemptions,
                (long long)press_tender_on.resumes,
                (long long)press_tender_on.reusedRows,
                press_tender_on.interactive.ttftP95Us,
                press_tender_off.interactive.ttftP95Us,
                press_tender_off.interactive.ttftP95Us /
                    press_tender_on.interactive.ttftP95Us);

    // Fault churn: the mixed-traffic workload under a seeded fault plan
    // plus front-door shedding, in all three decode arms. The fault-free
    // reference run of each arm doubles as the survivors' bit-exactness
    // baseline.
    const std::string fault_plan = FaultInjector::randomPlan(
        2024,
        {FaultSite::AllocFail, FaultSite::CallbackThrow,
         FaultSite::StepLatency},
        /*triggers=*/8, /*maxNth=*/60, /*latencyUs=*/300);
    const FaultArm fault_arms[] = {
        {"fp32", KVCacheMode::Fp32, false, true},
        {"tender", KVCacheMode::TenderQuantized, false, false},
        {"tender_fused", KVCacheMode::TenderQuantized, true, false},
    };
    FaultChurnPoint fault_points[3];
    bool fault_bitexact = true, fault_accounting_ok = true;
    for (int i = 0; i < 3; ++i) {
        fault_points[i] =
            runFaultChurn(model, kc, tspec, fault_arms[i], fault_plan);
        fault_bitexact =
            fault_bitexact && fault_points[i].survivorsBitexact;
        fault_accounting_ok =
            fault_accounting_ok && fault_points[i].accountingOk;
    }
    std::printf("fault churn (plan \"%s\", %zu requests + 2 doomed): ",
                fault_plan.c_str(), tspec.requests.size());
    for (int i = 0; i < 3; ++i)
        std::printf("%s %d ok / %d failed%s", fault_arms[i].name,
                    fault_points[i].finished, fault_points[i].failed,
                    i < 2 ? ", " : "; ");
    std::printf("survivors %s, accounting %s\n",
                fault_bitexact ? "bit-exact" : "DIVERGED",
                fault_accounting_ok ? "settled" : "LEAKED");

    // Speculative decoding on a repetitive-suffix workload: both drafters
    // at k in {2, 4, 8} against the plain baseline, per KV arm. The gate
    // is bit-identity (speculation may never change tokens); the headline
    // number is the best end-to-end speedup, which must clear 1x with
    // prompt lookup somewhere on this workload.
    const int spec_batch = 4;
    const int spec_prompt = smoke ? 12 : 24;
    const int spec_new = smoke ? 16 : 48;
    const int spec_ks[3] = {2, 4, 8};
    const char *spec_names[3] = {"fp32", "tender", "tender_fused"};
    const KVCacheMode spec_modes[3] = {KVCacheMode::Fp32,
                                       KVCacheMode::TenderQuantized,
                                       KVCacheMode::TenderQuantized};
    const bool spec_fused[3] = {false, false, true};
    double spec_plain_tps[3] = {0, 0, 0};
    SpecPoint spec_pl[3][3], spec_dm[3][3];
    bool spec_bitexact = true;
    double spec_best_speedup = 0.0;
    int spec_best_k = 0;
    const char *spec_best_arm = "";
    for (int a = 0; a < 3; ++a) {
        std::vector<GenResult> plain_tokens;
        const SpecPoint plain = runSpec(
            model, kc, spec_modes[a], spec_fused[a], DrafterKind::None, 4,
            spec_batch, spec_prompt, spec_new, reps, nullptr,
            &plain_tokens);
        spec_plain_tps[a] = plain.tokensPerS;
        for (int ki = 0; ki < 3; ++ki) {
            spec_pl[a][ki] = runSpec(model, kc, spec_modes[a],
                                     spec_fused[a],
                                     DrafterKind::PromptLookup,
                                     spec_ks[ki], spec_batch, spec_prompt,
                                     spec_new, reps, &plain_tokens);
            spec_dm[a][ki] = runSpec(model, kc, spec_modes[a],
                                     spec_fused[a], DrafterKind::Model,
                                     spec_ks[ki], spec_batch, spec_prompt,
                                     spec_new, reps, &plain_tokens);
            spec_bitexact = spec_bitexact && spec_pl[a][ki].bitexact &&
                            spec_dm[a][ki].bitexact;
            const double speedup =
                spec_pl[a][ki].tokensPerS / plain.tokensPerS;
            if (speedup > spec_best_speedup) {
                spec_best_speedup = speedup;
                spec_best_k = spec_ks[ki];
                spec_best_arm = spec_names[a];
            }
        }
    }
    std::printf("spec decode (batch %d, prompt %d, %d tokens): best "
                "prompt-lookup speedup %.2fx (%s, k=%d); tokens %s\n",
                spec_batch, spec_prompt, spec_new, spec_best_speedup,
                spec_best_arm, spec_best_k,
                spec_bitexact ? "bit-exact vs plain" : "DIVERGED");
    for (int a = 0; a < 3; ++a)
        std::printf("  %-12s plain %7.1f tok/s | lookup k=4 %7.1f tok/s "
                    "(accept %.2f) | draft-model k=4 %7.1f tok/s "
                    "(accept %.2f)\n",
                    spec_names[a], spec_plain_tps[a],
                    spec_pl[a][1].tokensPerS, spec_pl[a][1].acceptance,
                    spec_dm[a][1].tokensPerS, spec_dm[a][1].acceptance);

    const Correctness correct = checkCorrectness(model, gqa_model, kc);
    std::printf("correctness: fp32 decode %s full prefill, tender-KV "
                "nmse %.3g (bound %.3g), fused-attention nmse %.3g "
                "(bound %.3g), mq panels %s\n",
                correct.fp32BitExact ? "bit-identical to" : "DIVERGES from",
                correct.tenderNmse, correct.tenderNmseBound,
                correct.fusedNmse, correct.fusedNmseBound,
                correct.mqPanelBitExact ? "bit-exact" : "DIVERGED");

    FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"model\": {\"name\": \"%s\", \"d_model\": %d, "
                 "\"n_heads\": %d, \"n_layers\": %d, \"d_ffn\": %d},\n",
                 config.name.c_str(), config.dModel, config.nHeads,
                 config.nLayers, config.dFfn);
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"prompt_tokens\": %d,\n", prompt_len);
    std::fprintf(f, "  \"new_tokens_per_request\": %d,\n", new_tokens);
    std::fprintf(f, "  \"workers\": %d,\n", workers);
    std::fprintf(f, "  \"backend\": \"%s\",\n",
                 backendName(kc.backend()).c_str());
    std::fprintf(f, "  \"simd\": \"%s\",\n", simdDescription().c_str());
    // TENDER_BACKEND / TENDER_NUM_THREADS as this process resolved them,
    // so every recorded number is attributable to the environment arm.
    std::fprintf(f, "  \"default_backend\": \"%s\",\n",
                 backendName(defaultKernels().backend()).c_str());
    std::fprintf(f, "  \"default_workers\": %d,\n",
                 defaultKernels().workers());
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    emitMode(f, "fp32_kv", fp32, true);
    emitMode(f, "tender_kv", quant, true);
    emitMode(f, "tender_kv_fused", fusedq, true);
    std::fprintf(f, "  \"fused_over_dequant_tokens_ratio\": %.3f,\n",
                 fused_ratio);
    std::fprintf(f, "  \"mq_panels\": {\n");
    std::fprintf(f,
                 "    \"model\": \"%s\", \"q_heads_per_kv_head\": %d, "
                 "\"batch\": %d,\n",
                 gqa_config.name.c_str(),
                 gqa_config.nHeads / gqa_config.kvHeads, mq_batch);
    std::fprintf(f,
                 "    \"fp32_kv\": {\"on_tokens_per_s\": %.2f, "
                 "\"off_tokens_per_s\": %.2f, \"ratio\": %.3f},\n",
                 mq_fp32_on.tokensPerS, mq_fp32_off.tokensPerS,
                 mq_fp32_on.tokensPerS / mq_fp32_off.tokensPerS);
    std::fprintf(f,
                 "    \"tender_kv_fused\": {\"on_tokens_per_s\": %.2f, "
                 "\"off_tokens_per_s\": %.2f, \"ratio\": %.3f}\n",
                 mq_fused_on.tokensPerS, mq_fused_off.tokensPerS,
                 mq_fused_on.tokensPerS / mq_fused_off.tokensPerS);
    std::fprintf(f, "  },\n");
    emitChurn(f, "churn_fp32", churn_fp32_paged, churn_fp32_contig, true);
    emitChurn(f, "churn_tender", churn_tender_paged, churn_tender_contig,
              true);
    std::fprintf(f, "  \"prefix_shared\": {\n");
    std::fprintf(f, "    \"system_prompt_tokens\": %d,\n", pspec.sysLen);
    std::fprintf(f, "    \"requests\": %zu,\n", pspec.requests.size());
    emitPrefixMode(f, "fp32", prefix_fp32_shared, prefix_fp32_cold);
    emitPrefixMode(f, "tender", prefix_tender_shared, prefix_tender_cold);
    // Per-scenario-run value (both modes run the same workload and skip
    // the same rows); the per-mode copies live under fp32/tender.shared.
    std::fprintf(f, "    \"prefill_tokens_skipped\": %lld,\n",
                 (long long)prefix_fp32_shared.skippedRows);
    std::fprintf(f, "    \"prefix_reuse_bitexact\": %s,\n",
                 prefix_bitexact ? "true" : "false");
    std::fprintf(f, "    \"refcounts_consistent\": %s\n",
                 refcounts_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"mixed_traffic\": {\n");
    std::fprintf(f,
                 "    \"requests\": %zu, \"chat\": %d, \"long_doc\": %d, "
                 "\"short_completion\": %d,\n",
                 tspec.requests.size(), tspec.chat, tspec.longDoc,
                 tspec.shortCompl);
    std::fprintf(f,
                 "    \"max_batch\": %d, \"kv_pool_blocks\": %zu,\n",
                 tspec.maxBatch, tspec.poolBlocks);
    std::fprintf(f, "    \"tokens_per_s\": %.2f,\n", traffic.tokensPerS);
    std::fprintf(f,
                 "    \"prefix_hits\": %lld, \"deferred\": %lld, "
                 "\"overtakes\": %lld,\n",
                 (long long)traffic.prefixHits, (long long)traffic.deferred,
                 (long long)traffic.overtakes);
    emitTrafficClass(f, "interactive", traffic.interactive);
    emitTrafficClass(f, "batch", traffic.batch);
    std::fprintf(f, "    \"sampling_order_independent\": %s\n",
                 order_independent ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"preemption_pressure\": {\n");
    std::fprintf(f,
                 "    \"batch_requests\": %zu, "
                 "\"interactive_requests\": %zu, \"max_batch\": %d, "
                 "\"kv_pool_blocks\": %zu, \"warm_steps\": %d, "
                 "\"max_preemptions\": 2,\n",
                 ppspec.batchReqs.size(), ppspec.interactive.size(),
                 ppspec.maxBatch, ppspec.poolBlocks, ppspec.warmSteps);
    emitPressureMode(f, "fp32", press_fp32_on, press_fp32_off, true);
    emitPressureMode(f, "tender", press_tender_on, press_tender_off, true);
    std::fprintf(f, "    \"preempt_resume_bitexact\": %s,\n",
                 preempt_bitexact ? "true" : "false");
    std::fprintf(f, "    \"refcounts_consistent\": %s\n",
                 preempt_accounting_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fault_churn\": {\n");
    std::fprintf(f,
                 "    \"requests\": %zu, \"doomed_requests\": 2, "
                 "\"max_batch\": %d, \"plan\": \"%s\",\n",
                 tspec.requests.size(), tspec.maxBatch, fault_plan.c_str());
    for (int i = 0; i < 3; ++i)
        emitFaultArm(f, fault_arms[i].name, fault_points[i]);
    std::fprintf(f, "    \"fault_isolation_bitexact\": %s,\n",
                 fault_bitexact ? "true" : "false");
    std::fprintf(f, "    \"refcounts_consistent\": %s\n",
                 fault_accounting_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"spec_decode\": {\n");
    std::fprintf(f,
                 "    \"batch\": %d, \"prompt_tokens\": %d, "
                 "\"new_tokens\": %d,\n",
                 spec_batch, spec_prompt, spec_new);
    for (int a = 0; a < 3; ++a) {
        std::fprintf(f, "    \"%s\": {\n", spec_names[a]);
        std::fprintf(f, "      \"plain_tokens_per_s\": %.2f,\n",
                     spec_plain_tps[a]);
        const char *drafters[2] = {"prompt_lookup", "draft_model"};
        for (int d = 0; d < 2; ++d) {
            const SpecPoint *row = d == 0 ? spec_pl[a] : spec_dm[a];
            std::fprintf(f, "      \"%s\": {\n", drafters[d]);
            for (int ki = 0; ki < 3; ++ki)
                std::fprintf(f,
                             "        \"k_%d\": {\"tokens_per_s\": %.2f, "
                             "\"acceptance\": %.4f, \"drafted\": %lld, "
                             "\"accepted\": %lld, \"steps\": %lld, "
                             "\"speedup\": %.3f}%s\n",
                             spec_ks[ki], row[ki].tokensPerS,
                             row[ki].acceptance, (long long)row[ki].drafted,
                             (long long)row[ki].accepted,
                             (long long)row[ki].steps,
                             row[ki].tokensPerS / spec_plain_tps[a],
                             ki < 2 ? "," : "");
            std::fprintf(f, "      }%s\n", d == 0 ? "," : "");
        }
        std::fprintf(f, "    },\n");
    }
    std::fprintf(f,
                 "    \"best_prompt_lookup_speedup\": %.3f, "
                 "\"best_arm\": \"%s\", \"best_k\": %d,\n",
                 spec_best_speedup, spec_best_arm, spec_best_k);
    std::fprintf(f, "    \"spec_decode_bitexact\": %s\n",
                 spec_bitexact ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"calibration\": {\"workload\": \"%s\", "
                 "\"score_mflops\": %.1f},\n",
                 bench::kCalibrationWorkload, calibration);
    std::fprintf(f,
                 "  \"correctness\": {\"fp32_decode_bit_exact\": %s, "
                 "\"tender_kv_nmse\": %.6g, "
                 "\"tender_kv_nmse_bound\": %.3g, "
                 "\"fused_attention_nmse\": %.6g, "
                 "\"fused_attention_nmse_bound\": %.3g, "
                 "\"mq_panel_bitexact\": %s},\n",
                 correct.fp32BitExact ? "true" : "false",
                 correct.tenderNmse, correct.tenderNmseBound,
                 correct.fusedNmse, correct.fusedNmseBound,
                 correct.mqPanelBitExact ? "true" : "false");
    std::fprintf(f, "  \"fp32_batched_speedup\": {");
    for (size_t i = 1; i < fp32.size(); ++i)
        std::fprintf(f, "\"batch_%d\": %.3f%s", fp32[i].batch,
                     fp32[i].tokensPerS / fp32[0].tokensPerS,
                     i + 1 < fp32.size() ? ", " : "");
    std::fprintf(f, "}\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
    return correct.fp32BitExact &&
                   correct.tenderNmse < correct.tenderNmseBound &&
                   correct.fusedNmse < correct.fusedNmseBound &&
                   correct.mqPanelBitExact && prefix_bitexact &&
                   refcounts_ok && order_independent && preempt_bitexact &&
                   preempt_accounting_ok && fault_bitexact &&
                   fault_accounting_ok && spec_bitexact
               ? 0
               : 1;
}
