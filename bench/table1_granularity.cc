/**
 * @file
 * Table I: perplexity of activation quantization at per-tensor, per-row,
 * and per-column granularity, INT8 and INT4, for OPT-6.7B/13B and
 * Llama-2-7B/13B on WikiText-2.
 *
 * Expected shape (paper): per-column is near-FP16 at INT8 and usable at
 * INT4; per-tensor/per-row collapse, catastrophically at INT4.
 */

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

int
main()
{
    printBanner("Table I: quantization granularity vs perplexity (Wiki)");

    const std::vector<std::string> models = {"OPT-6.7B", "OPT-13B",
                                             "Llama-2-7B", "Llama-2-13B"};
    TablePrinter table;
    std::vector<std::string> header = {"Scheme"};
    for (const auto &m : models)
        header.push_back(m);
    table.setHeader(header);

    // Measure everything first: anchors then predictions.
    std::vector<PplModel> ppl_models;
    std::vector<AnchorErrors> anchors;
    std::vector<SyntheticModel> replicas;
    replicas.reserve(models.size());
    for (const auto &name : models)
        replicas.push_back(makeReplica(name));
    for (size_t i = 0; i < models.size(); ++i) {
        anchors.push_back(measureAnchors(replicas[i], "wiki"));
        ppl_models.push_back(makePplModel(models[i], "wiki", anchors[i]));
    }

    std::vector<std::string> base_row = {"FP16"};
    for (size_t i = 0; i < models.size(); ++i)
        base_row.push_back(TablePrinter::num(ppl_models[i].basePpl));
    table.addRow(base_row);
    table.addSeparator();

    for (int bits : {8, 4}) {
        for (Granularity g : {Granularity::PerTensor, Granularity::PerRow,
                              Granularity::PerColumn}) {
            const bool is_anchor = g == Granularity::PerTensor;
            std::vector<std::string> row = {
                "INT" + std::to_string(bits) + " " + granularityName(g) +
                (is_anchor ? " [anchor]" : "")};
            for (size_t i = 0; i < models.size(); ++i) {
                double err;
                if (is_anchor) {
                    err = bits == 8 ? anchors[i].e8 : anchors[i].e4;
                } else {
                    err = schemeError(replicas[i],
                                      UniformScheme(bits, g), "wiki");
                }
                row.push_back(TablePrinter::num(ppl_models[i].eval(err)));
            }
            table.addRow(row);
        }
        if (bits == 8)
            table.addSeparator();
    }
    table.print();
    return 0;
}
