/**
 * @file
 * Ablation: per-channel bias subtraction (DESIGN.md §4.3) — the
 * symmetrization step of Fig. 4 ("By subtracting the bias, Tender ensures
 * that the absolute values of the maximum and minimum elements in the
 * channel are equal, thus optimizing the bit usage").
 */

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

int
main()
{
    printBanner("Ablation: channel bias subtraction (OPT-6.7B wiki)");

    SyntheticModel replica = makeReplica("OPT-6.7B");
    const PplModel ppl =
        makePplModel("OPT-6.7B", "wiki", measureAnchors(replica, "wiki"));

    TablePrinter table;
    table.setHeader({"Bias subtraction", "INT4 ppl", "INT8 ppl"});
    for (bool bias : {true, false}) {
        std::vector<std::string> row = {bias ? "on (paper)" : "off"};
        for (int bits : {4, 8}) {
            TenderConfig cfg = tenderAccuracyConfig(bits);
            cfg.biasSubtract = bias;
            const double err =
                schemeError(replica, TenderScheme(cfg), "wiki");
            row.push_back(TablePrinter::num(ppl.eval(err)));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\nShape check: symmetrization helps most at INT4, where "
                "every quantization level counts.\n");
    return 0;
}
