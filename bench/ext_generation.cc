/**
 * @file
 * Extension study: the generation (decode) stage, Sections V-A and VI-D.
 *
 * The paper evaluates prefill (2048:1) and notes that (a) Tender "still
 * works and provides benefits" during generation, (b) decode
 * under-utilizes compute on most accelerators, and (c) batching decode
 * requests restores utilization (Orca/FlexGen are cited). This harness
 * quantifies all three on the cycle-level simulator: per-accelerator
 * decode latency at batch 1, and Tender's decode throughput as the batch
 * grows toward the output-stationary array height.
 */

#include <cstdio>

#include "sim/baselines.h"
#include "util/table.h"

using namespace tender;

int
main()
{
    const ModelConfig model = modelByName("OPT-6.7B");
    const DramConfig dram = defaultDramConfig();
    const int context = 2048;

    std::printf("== Extension: generation stage (decode, context %d) ==\n",
                context);
    std::printf("cycle-level simulator; batch 1 decode is weight-bandwidth "
                "bound on every accelerator\n\n");

    TablePrinter table("Per-token decode latency, batch 1");
    table.setHeader({"Accelerator", "Cycles/token", "us/token",
                     "Mem-bound fraction"});
    const Workload decode = decodeWorkload(model, context);
    for (const AcceleratorConfig &cfg : speedupAccelerators()) {
        AcceleratorSim sim(cfg, dram);
        SimResult r = sim.run(decode);
        table.addRow({cfg.name,
                      TablePrinter::num(double(r.cycles), 0),
                      TablePrinter::num(double(r.cycles) / 1e3, 1),
                      TablePrinter::num(
                          100.0 * double(r.memCycles) /
                              double(std::max<uint64_t>(r.cycles, 1)),
                          0) + "%"});
    }
    table.print();

    std::printf("\nBatched decode on Tender (Section VI-D: batching up to "
                "the OS array height restores utilization):\n");
    TablePrinter batched;
    batched.setHeader({"Batch", "Cycles/token", "Tokens/s",
                       "Speedup vs batch 1"});
    AcceleratorSim tender_sim(tenderConfig(), dram);
    double per_token_b1 = 0.0;
    for (int batch : {1, 2, 4, 8, 16, 32, 64}) {
        SimResult r =
            tender_sim.run(batchedDecodeWorkload(model, context, batch));
        const double per_token = double(r.cycles) / double(batch);
        if (batch == 1)
            per_token_b1 = per_token;
        batched.addRow({std::to_string(batch),
                        TablePrinter::num(per_token, 0),
                        TablePrinter::num(1e9 / per_token, 0),
                        TablePrinter::mult(per_token_b1 / per_token)});
    }
    batched.print();
    std::printf("\nShape check: throughput grows nearly linearly while the "
                "batch fits the 64-row output-stationary array, then "
                "flattens — the paper's rationale for batching decode up "
                "to the array height.\n");
    return 0;
}
