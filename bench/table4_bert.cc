/**
 * @file
 * Table IV: BERT-Large GLUE accuracy under INT8/INT4 PTQ for ANT, OliVe,
 * and Tender. All matrix multiplications in the block are quantized
 * (including attention), per the paper's methodology.
 *
 * The accuracy proxy is anchored per task on the ANT INT4 row (the
 * largest published drop); ANT INT4 therefore reproduces the paper by
 * construction and the remaining rows are predictions.
 */

#include "quant/ant.h"
#include "quant/olive.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

namespace {

struct Task
{
    const char *name;
    double base;       // FP32 (paper)
    double floor;      // collapsed-model score the metric decays toward
    double antInt4;    // anchor (paper)
};

// FP32 and ANT-INT4 rows from Table IV. The decay floor is the score of a
// fully collapsed model, which can sit *below* the majority-class chance
// (a collapsed model may fixate on the minority class — the published
// MRPC 21.09 does exactly that).
const Task kTasks[] = {
    {"CoLA", 60.20, 0.0, 53.77},   {"SST-2", 93.12, 49.0, 90.60},
    {"MRPC", 91.58, 19.0, 21.09},  {"STS-B", 89.94, 0.0, 85.93},
    {"QQP", 91.40, 37.0, 83.62},   {"QNLI", 92.33, 49.5, 60.86},
};

} // namespace

int
main()
{
    printBanner("Table IV: BERT-Large GLUE accuracy (all GEMMs quantized)");

    SyntheticModel replica = makeReplica("BERT-Large");
    ExecOptions opts;
    opts.quantizeActAct = true;

    // Measured errors per scheme.
    auto err_of = [&](const GemmScheme &s) {
        return schemeError(replica, s, "wiki", opts);
    };
    const double e_ant8 = err_of(AntScheme(8));
    const double e_ant4 = err_of(AntScheme(4));
    const double e_olive8 = err_of(OliveScheme(8));
    const double e_olive4 = err_of(OliveScheme(4));
    const double e_tender8 =
        err_of(TenderScheme(tenderAccuracyConfig(8)));
    const double e_tender4 =
        err_of(TenderScheme(tenderAccuracyConfig(4)));

    TablePrinter table;
    std::vector<std::string> header = {"Precision", "Scheme"};
    for (const Task &t : kTasks)
        header.push_back(t.name);
    table.setHeader(header);

    std::vector<std::string> base_row = {"FP32", "Base"};
    for (const Task &t : kTasks)
        base_row.push_back(TablePrinter::num(t.base));
    table.addRow(base_row);
    table.addSeparator();

    auto acc_model = [&](const Task &t) {
        const double anchored =
            std::max(t.antInt4, t.floor + 0.02 * (t.base - t.floor));
        return anchorAccuracyModel(t.base, t.floor, e_ant4, anchored);
    };

    struct Row
    {
        const char *precision;
        const char *scheme;
        double err;
        bool anchor;
    };
    const Row rows[] = {
        {"INT8", "ANT", e_ant8, false},
        {"INT8", "OliVe", e_olive8, false},
        {"INT8", "Tender", e_tender8, false},
        {"INT4", "ANT [anchor]", e_ant4, true},
        {"INT4", "OliVe", e_olive4, false},
        {"INT4", "Tender", e_tender4, false},
    };
    int printed = 0;
    for (const Row &r : rows) {
        std::vector<std::string> cells = {r.precision, r.scheme};
        for (const Task &t : kTasks)
            cells.push_back(TablePrinter::num(acc_model(t).eval(r.err)));
        table.addRow(cells);
        if (++printed == 3)
            table.addSeparator();
    }
    table.print();
    return 0;
}
