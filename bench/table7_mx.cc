/**
 * @file
 * Table VII: zero-shot task accuracy of Tender-INT4 vs the SMX4 and MXFP4
 * microscaling formats on OPT-6.7B and LLaMA-7B.
 *
 * The accuracy proxy is anchored per (model, task) on the SMX4 row (the
 * published collapse); MXFP4 and Tender are predictions. Expected shape:
 * SMX4 near chance, MXFP4 in between, Tender closest to FP32.
 */

#include "quant/mx.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

namespace {

struct Task
{
    const char *name;
    double chance;
    double baseOpt;  // FP32, OPT-6.7B (paper)
    double smxOpt;   // SMX4 anchor, OPT-6.7B (paper)
    double mxOpt;    // MXFP4 anchor, OPT-6.7B (paper)
    double baseLlama;
    double smxLlama;
    double mxLlama;
};

const Task kTasks[] = {
    {"Hellaswag", 25.0, 67.16, 26.94, 54.13, 76.20, 25.89, 67.51},
    {"WIC", 50.0, 48.12, 49.84, 51.72, 49.06, 50.00, 46.24},
    {"Anli-r2", 33.3, 34.40, 33.40, 33.90, 36.10, 33.40, 35.30},
    {"Winogrande", 50.0, 65.43, 50.12, 52.88, 70.01, 50.59, 62.35},
    {"ARC easy", 25.0, 60.02, 29.76, 44.57, 72.85, 27.78, 63.68},
    {"ARC challenge", 25.0, 34.73, 23.46, 29.18, 44.71, 26.88, 35.49},
    {"Lambada", 0.0, 67.69, 0.02, 43.74, 73.61, 0.02, 56.65},
    {"College CS", 25.0, 34.00, 25.00, 25.00, 26.00, 23.00, 22.00},
    {"Int. law", 25.0, 37.19, 23.97, 32.23, 46.28, 29.75, 33.06},
    {"Jurisprudence", 25.0, 21.30, 25.93, 25.00, 36.11, 26.85, 26.85},
};

} // namespace

int
main()
{
    printBanner("Table VII: Tender vs SMX4/MXFP4 zero-shot accuracy");

    const std::vector<std::string> models = {"OPT-6.7B", "LLaMA-7B"};
    ExecOptions opts;
    opts.quantizeActAct = true; // all matmuls quantized, as in [48]

    for (const auto &model_name : models) {
        SyntheticModel replica = makeReplica(model_name);
        const double e_smx =
            schemeError(replica, Smx4Scheme(), "wiki", opts);
        const double e_mx =
            schemeError(replica, Mxfp4Scheme(), "wiki", opts);
        const double e_tender =
            schemeError(replica, TenderScheme(tenderAccuracyConfig(4)),
                        "wiki", opts);

        TablePrinter table(model_name);
        table.setHeader({"Task", "FP32", "SMX4 [anchor]",
                         "MXFP4 [anchor]", "Tender"});
        for (const Task &t : kTasks) {
            const bool is_opt = model_name == "OPT-6.7B";
            const double base = is_opt ? t.baseOpt : t.baseLlama;
            const double smx = is_opt ? t.smxOpt : t.smxLlama;
            const double mx = is_opt ? t.mxOpt : t.mxLlama;
            // Some tasks sit at or below chance already (WIC, small MMLU
            // splits); the decay model needs base > chance, so clamp the
            // span to a sliver when the published numbers invert.
            const double chance = std::min(t.chance, base - 0.5);
            const double smx_c =
                std::max(smx, chance + 0.01 * (base - chance));
            const double mx_c =
                std::max(mx, chance + 0.01 * (base - chance));
            // Both published format rows anchor the mapping; Tender is
            // the prediction.
            AccuracyModel acc = anchorAccuracyModel2(
                base, chance, e_mx, mx_c, e_smx, smx_c);
            table.addRow({t.name, TablePrinter::num(base),
                          TablePrinter::num(acc.eval(e_smx)),
                          TablePrinter::num(acc.eval(e_mx)),
                          TablePrinter::num(acc.eval(e_tender))});
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
