/**
 * @file
 * Fig. 3: persistence of outlier channels across layers. The paper shows
 * heatmaps of the attention-input tensor at sampled depths with the same
 * vertical stripes (channels) lighting up; this harness prints, for each
 * sampled layer, the top channels by |max| and the overlap with the
 * model's designated outlier set.
 */

#include <algorithm>
#include <cstdio>

#include "model/transformer.h"
#include "quant/quantizer.h"
#include "util/table.h"

#include "bench_common.h"

using namespace tender;
using namespace tender::bench;

int
main()
{
    printBanner("Fig. 3: outlier channel persistence across layers");

    SyntheticModel model = makeReplica("OPT-6.7B");
    const ModelConfig &cfg = model.config();
    const auto &designated = model.outlierChannels();
    const size_t top_k = designated.size();

    TablePrinter table;
    table.setHeader({"Layer", "Top channels by |max|",
                     "Overlap with fixed outlier set"});

    Matrix x = model.sampleInput(kSeqLen, 2);
    for (int l = 0; l < cfg.nLayers; ++l) {
        const BlockWeights &w = model.blockWeights(l);
        const Matrix attn_in = layerNorm(x, w.ln1Gain, w.ln1Bias);

        std::vector<std::pair<double, int>> mags;
        for (int c = 0; c < attn_in.cols(); ++c)
            mags.emplace_back(double(colAbsMax(attn_in, c)), c);
        std::sort(mags.rbegin(), mags.rend());

        std::string tops;
        int overlap = 0;
        for (size_t i = 0; i < top_k; ++i) {
            tops += (i ? "," : "") + std::to_string(mags[i].second);
            if (std::find(designated.begin(), designated.end(),
                          mags[i].second) != designated.end())
                ++overlap;
        }
        table.addRow({std::to_string(l), tops,
                      std::to_string(overlap) + "/" +
                          std::to_string(top_k)});
        x = blockForward(x, w, cfg);
    }
    table.print();
    std::printf("\nShape check: the same channel indices dominate every "
                "layer (the paper's vertical stripes).\n");
    return 0;
}
